(* Data-layout transformation pass (§3): preferences, transform
   semantics, and mismatch accounting. *)

module Layout = Tvm_graph.Layout
module G = Tvm_graph.Graph_ir
module Nd = Tvm_nd.Ndarray
module Models = Tvm_models.Models
open Test_helpers

let test_layout_strings () =
  checkb "roundtrip NCHW" (Layout.layout_of_string "NCHW" = Layout.Nchw);
  checkb "roundtrip NCHW4c" (Layout.layout_of_string "NCHW4c" = Layout.Nchw_c 4);
  Alcotest.(check string) "print" "NCHW8c" (Layout.layout_to_string (Layout.Nchw_c 8))

let test_transform_roundtrip () =
  let v = Nd.random ~seed:80 [ 1; 8; 3; 3 ] in
  let packed = Layout.transform_exec ~from_:Layout.Nchw ~to_:(Layout.Nchw_c 4) v in
  Alcotest.(check (list int)) "packed shape" [ 1; 2; 3; 3; 4 ] (Nd.shape packed);
  let back = Layout.transform_exec ~from_:(Layout.Nchw_c 4) ~to_:Layout.Nchw packed in
  checkb "roundtrip values" (Nd.equal_approx v back)

let test_preferences () =
  let g = Models.resnet18 ~input_hw:32 ~width:0.25 ~num_classes:10 () in
  let r = Layout.annotate ~lanes:4 g in
  (* conv nodes with channel counts divisible by the lanes prefer the
     blocked layout *)
  let blocked =
    List.filter (fun (_, l) -> l <> Layout.Nchw) r.Layout.annotations
  in
  checkb "some nodes blocked" (List.length blocked > 10);
  (* a width making channels indivisible forces NCHW *)
  let g2 = Models.dqn ~input_hw:40 () in
  let r2 = Layout.annotate ~lanes:7 g2 in
  checkb "odd lanes keep NCHW"
    (List.for_all (fun (_, l) -> l = Layout.Nchw) r2.Layout.annotations)

let test_transform_cost () =
  let g = Models.resnet18 ~input_hw:32 ~width:0.25 ~num_classes:10 () in
  let r = Layout.annotate ~lanes:4 g in
  let bytes = Layout.transform_bytes g r in
  (* the stem (3 channels) cannot block, so at least one boundary needs
     a repack; cost is bounded by total activation traffic *)
  checkb "nonzero transform traffic" (bytes > 0.);
  checkb "bounded" (bytes < 1e9)

let suite =
  [
    Alcotest.test_case "layout strings" `Quick test_layout_strings;
    Alcotest.test_case "transform roundtrip" `Quick test_transform_roundtrip;
    Alcotest.test_case "preferences" `Quick test_preferences;
    Alcotest.test_case "transform cost" `Quick test_transform_cost;
  ]
