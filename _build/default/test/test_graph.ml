(* Graph-level tests: shape inference, fusion rules, constant folding,
   memory planning, and the reference executor. *)

module G = Tvm_graph.Graph_ir
module Attrs = Tvm_graph.Attrs
module Fusion = Tvm_graph.Fusion
module Const_fold = Tvm_graph.Const_fold
module Mem_plan = Tvm_graph.Mem_plan
module R = Tvm_graph.Op_registry
module Nd = Tvm_nd.Ndarray
open Test_helpers

let () = Tvm_graph.Std_ops.register_all ()

let conv_bn_relu_graph () =
  let b = G.builder () in
  let d = G.input b "d" [ 1; 4; 8; 8 ] in
  let w = G.param b "w" [ 8; 4; 3; 3 ] in
  let c = G.op b "conv2d" ~name:"conv" ~attrs:[ ("stride", Attrs.Int 1); ("padding", Attrs.Str "same") ] [ d; w ] in
  let sc = G.param b "sc" [ 8 ] and sh = G.param b "sh" [ 8 ] in
  let bn = G.op b "batch_norm" ~name:"bn" [ c; sc; sh ] in
  let r = G.op b "relu" ~name:"relu" [ bn ] in
  G.finalize b [ r ]

let test_shape_inference () =
  let g = conv_bn_relu_graph () in
  let conv = G.node g 2 in
  Alcotest.(check (list int)) "conv shape" [ 1; 8; 8; 8 ] conv.G.shape;
  let b = G.builder () in
  let d = G.input b "d" [ 1; 4; 9; 9 ] in
  let w = G.param b "w" [ 8; 4; 4; 4 ] in
  let c = G.op b "conv2d" ~attrs:[ ("stride", Attrs.Int 2); ("padding", Attrs.Str "valid") ] [ d; w ] in
  Alcotest.(check (list int)) "valid stride-2" [ 1; 8; 3; 3 ] (G.node_shape b c)

let test_patterns () =
  checkb "conv complex" (R.pattern "conv2d" = R.Complex_out_fusable);
  checkb "relu injective" (R.pattern "relu" = R.Injective);
  checkb "pool reduction" (R.pattern "max_pool2d" = R.Reduction);
  checkb "softmax opaque" (R.pattern "softmax" = R.Opaque)

let test_fusion_absorbs_epilogue () =
  let g = conv_bn_relu_graph () in
  let groups = Fusion.fuse g in
  Alcotest.(check int) "one group" 1 (List.length groups);
  let grp = List.hd groups in
  Alcotest.(check int) "3 ops fused" 3 (Fusion.group_size grp);
  checkb "anchor is conv"
    (match (G.node g grp.Fusion.g_anchor).G.kind with
    | G.Op "conv2d" -> true
    | _ -> false)

let test_fusion_stops_at_multi_consumer () =
  (* d -> relu -> (a, b): relu result used twice, must not be absorbed. *)
  let b = G.builder () in
  let d = G.input b "d" [ 1; 4 ] in
  let r = G.op b "relu" [ d ] in
  let t = G.op b "tanh" [ r ] in
  let s = G.op b "sigmoid" [ r ] in
  let out = G.op b "add" [ t; s ] in
  let g = G.finalize b [ out ] in
  let groups = Fusion.fuse g in
  (* relu alone (two consumers), tanh+?; groups must partition the 4 ops *)
  let total = List.fold_left (fun acc grp -> acc + Fusion.group_size grp) 0 groups in
  Alcotest.(check int) "all ops covered" 4 total;
  let relu_group =
    List.find
      (fun grp ->
        List.exists (fun id -> (G.node g id).G.kind = G.Op "relu") grp.Fusion.g_nodes)
      groups
  in
  Alcotest.(check int) "relu not fused forward" 1 (Fusion.group_size relu_group)

let test_fusion_topological () =
  (* Residual-style: make sure group order respects data deps. *)
  let g = Tvm_models.Models.resnet18 ~input_hw:32 ~width:0.125 ~num_classes:10 () in
  let groups = Fusion.fuse g in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun grp ->
      List.iter
        (fun input ->
          (* every group input that is itself some group's output must
             already have run *)
          if List.exists (fun g2 -> g2.Fusion.g_output = input) groups then
            checkb "producer before consumer" (Hashtbl.mem seen input))
        grp.Fusion.g_inputs;
      Hashtbl.replace seen grp.Fusion.g_output ())
    groups

let test_no_fusion_singletons () =
  let g = conv_bn_relu_graph () in
  let groups = Fusion.no_fusion g in
  Alcotest.(check int) "3 singleton groups" 3 (List.length groups);
  List.iter (fun grp -> Alcotest.(check int) "size 1" 1 (Fusion.group_size grp)) groups

let test_const_fold () =
  (* relu(param) collapses into a new param; conv(input, ...) stays. *)
  let b = G.builder () in
  let d = G.input b "d" [ 2; 2 ] in
  let p = G.param b "p" [ 2; 2 ] in
  let pr = G.op b "relu" ~name:"fold_me" [ p ] in
  let out = G.op b "add" [ d; pr ] in
  let g = G.finalize b [ out ] in
  let pv = Nd.of_list [ 2; 2 ] [ -1.; 2.; -3.; 4. ] in
  let result = Const_fold.run g ~params:[ (p, pv) ] in
  Alcotest.(check int) "one node folded" 1 result.Const_fold.num_folded;
  let folded = List.assoc pr result.Const_fold.folded_params in
  checkb "folded values" (Nd.to_list folded = [ 0.; 2.; 0.; 4. ])

let test_mem_plan_reuse () =
  (* A linear chain lets the planner ping-pong two buffers. *)
  let b = G.builder () in
  let d = G.input b "d" [ 1; 64 ] in
  let x1 = G.op b "relu" [ d ] in
  let x2 = G.op b "tanh" [ x1 ] in
  let x3 = G.op b "sigmoid" [ x2 ] in
  let x4 = G.op b "relu" [ x3 ] in
  let g = G.finalize b [ x4 ] in
  let groups = Fusion.no_fusion g in
  let plan = Mem_plan.plan g groups in
  checkb "pooled smaller than naive" (plan.Mem_plan.total_bytes < plan.Mem_plan.naive_bytes);
  Alcotest.(check int) "two slots suffice" 2 (List.length plan.Mem_plan.slots)

let test_mem_plan_no_overlap () =
  (* Simulate the plan: a value's slot must not be reassigned while the
     value is still live. *)
  let g = Tvm_models.Models.mobilenet ~input_hw:32 ~width:0.25 ~num_classes:10 () in
  let groups = Fusion.fuse g in
  let plan = Mem_plan.plan g groups in
  let slot_of id = List.assoc id plan.Mem_plan.assignments in
  let last_use = Hashtbl.create 16 in
  List.iteri
    (fun step grp ->
      List.iter
        (fun input ->
          if List.mem_assoc input plan.Mem_plan.assignments then
            Hashtbl.replace last_use input step)
        grp.Fusion.g_inputs)
    groups;
  (* for each pair in the same slot, live ranges must not overlap *)
  List.iteri
    (fun step_a grp_a ->
      List.iteri
        (fun step_b grp_b ->
          if step_a < step_b then begin
            let a = grp_a.Fusion.g_output and bq = grp_b.Fusion.g_output in
            if slot_of a = slot_of bq then
              let a_dead =
                match Hashtbl.find_opt last_use a with Some s -> s | None -> step_a
              in
              checkb "no live overlap in shared slot" (a_dead <= step_b)
          end)
        groups)
    groups

let test_reference_executor () =
  let g = conv_bn_relu_graph () in
  let groups = Fusion.fuse g in
  let module_ = Tvm_runtime.Rt_module.create ~target_name:"none" [] in
  let exec = Tvm_runtime.Graph_executor.create ~graph:g ~groups ~module_ () in
  Tvm_runtime.Graph_executor.set_input exec "d" (Nd.random ~seed:70 [ 1; 4; 8; 8 ]);
  Tvm_runtime.Graph_executor.set_input exec "w" (Nd.random ~seed:71 [ 8; 4; 3; 3 ]);
  Tvm_runtime.Graph_executor.set_input exec "sc" (Nd.random ~seed:72 [ 8 ]);
  Tvm_runtime.Graph_executor.set_input exec "sh" (Nd.random ~seed:73 [ 8 ]);
  Tvm_runtime.Graph_executor.run ~mode:`Reference exec;
  let out = Tvm_runtime.Graph_executor.get_output exec 0 in
  checkb "relu output nonneg" (Nd.fold (fun acc v -> acc && v >= 0.) true out);
  (* set_input validates shapes *)
  try
    Tvm_runtime.Graph_executor.set_input exec "d" (Nd.create [ 1; 4; 4; 4 ]);
    Alcotest.fail "shape mismatch must be rejected"
  with Invalid_argument _ -> ()

let test_reshape_op () =
  let b = G.builder () in
  let d = G.input b "d" [ 2; 6 ] in
  let r = G.op b "reshape" ~attrs:[ ("shape", Attrs.Ints [ 3; 4 ]) ] [ d ] in
  let g = G.finalize b [ r ] in
  ignore g;
  Alcotest.(check (list int)) "reshape shape" [ 3; 4 ] (G.node_shape b r);
  try
    let b2 = G.builder () in
    let d2 = G.input b2 "d" [ 2; 6 ] in
    ignore (G.op b2 "reshape" ~attrs:[ ("shape", Attrs.Ints [ 5; 5 ]) ] [ d2 ]);
    Alcotest.fail "bad reshape must be rejected"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "shape inference" `Quick test_shape_inference;
    Alcotest.test_case "op patterns" `Quick test_patterns;
    Alcotest.test_case "fusion absorbs epilogue" `Quick test_fusion_absorbs_epilogue;
    Alcotest.test_case "fusion stops at multi-consumer" `Quick test_fusion_stops_at_multi_consumer;
    Alcotest.test_case "fusion is topological" `Quick test_fusion_topological;
    Alcotest.test_case "no-fusion singletons" `Quick test_no_fusion_singletons;
    Alcotest.test_case "constant folding" `Quick test_const_fold;
    Alcotest.test_case "memory plan reuse" `Quick test_mem_plan_reuse;
    Alcotest.test_case "memory plan no overlap" `Quick test_mem_plan_no_overlap;
    Alcotest.test_case "reference executor" `Quick test_reference_executor;
    Alcotest.test_case "reshape op" `Quick test_reshape_op;
  ]
