(* Tests for the tensor expression operator library: every operator's
   default-schedule lowering must match an independent reference. *)

open Tvm_tir
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Winograd = Tvm_te.Winograd
module Bitserial = Tvm_te.Bitserial
module Nd = Tvm_nd.Ndarray
open Test_helpers

let ph ?dtype name shape = Tensor.placeholder ?dtype name (List.map Expr.int shape)

let test_conv2d_strided () =
  let d = ph "d1" [ 1; 3; 9; 9 ] and w = ph "w1" [ 4; 3; 3; 3 ] in
  let c = Op.conv2d ~name:"t_conv_s2" ~stride:2 d w in
  let dv = Nd.random ~seed:1 [ 1; 3; 9; 9 ] and wv = Nd.random ~seed:2 [ 4; 3; 3; 3 ] in
  let out = Nd.create [ 1; 4; 5; 5 ] in
  ignore (run_default c [ (d, dv); (w, wv); (c, out) ]);
  approx "conv stride 2" (ref_conv2d ~stride:2 ~pad:1 dv wv) out

let test_conv2d_1x1 () =
  let d = ph "d2" [ 1; 6; 5; 5 ] and w = ph "w2" [ 8; 6; 1; 1 ] in
  let c = Op.conv2d ~name:"t_conv_1x1" ~stride:1 d w in
  let dv = Nd.random ~seed:3 [ 1; 6; 5; 5 ] and wv = Nd.random ~seed:4 [ 8; 6; 1; 1 ] in
  let out = Nd.create [ 1; 8; 5; 5 ] in
  ignore (run_default c [ (d, dv); (w, wv); (c, out) ]);
  approx "1x1 conv" (ref_conv2d ~stride:1 ~pad:0 dv wv) out

let test_depthwise () =
  let d = ph "d3" [ 1; 4; 6; 6 ] and w = ph "w3" [ 4; 1; 3; 3 ] in
  let c = Op.depthwise_conv2d ~name:"t_dw" ~stride:1 d w in
  let dv = Nd.random ~seed:5 [ 1; 4; 6; 6 ] and wv = Nd.random ~seed:6 [ 4; 1; 3; 3 ] in
  let out = Nd.create [ 1; 4; 6; 6 ] in
  ignore (run_default c [ (d, dv); (w, wv); (c, out) ]);
  let reference =
    Nd.init [ 1; 4; 6; 6 ] (fun idx ->
        match idx with
        | [ _; ch; y; x ] ->
            let acc = ref 0. in
            for dy = 0 to 2 do
              for dx = 0 to 2 do
                let yy = y + dy - 1 and xx = x + dx - 1 in
                if yy >= 0 && yy < 6 && xx >= 0 && xx < 6 then
                  acc := !acc +. (Nd.get dv [ 0; ch; yy; xx ] *. Nd.get wv [ ch; 0; dy; dx ])
              done
            done;
            !acc
        | _ -> assert false)
  in
  approx "depthwise" reference out

let test_dense_matmul () =
  let a = ph "a4" [ 3; 7 ] and b = ph "b4" [ 5; 7 ] in
  let c = Op.dense ~name:"t_dense" a b in
  let av = Nd.random ~seed:7 [ 3; 7 ] and bv = Nd.random ~seed:8 [ 5; 7 ] in
  let out = Nd.create [ 3; 5 ] in
  ignore (run_default c [ (a, av); (b, bv); (c, out) ]);
  approx "dense" (ref_dense av bv) out

let test_matmul_transposed () =
  (* C[y,x] = sum_k A[k,y]*B[k,x] — the paper's §4.1 example. *)
  let a = ph "a5" [ 6; 4 ] and b = ph "b5" [ 6; 5 ] in
  let c = Op.matmul_transposed ~name:"t_mmT" a b in
  let av = Nd.random ~seed:9 [ 6; 4 ] and bv = Nd.random ~seed:10 [ 6; 5 ] in
  let out = Nd.create [ 4; 5 ] in
  ignore (run_default c [ (a, av); (b, bv); (c, out) ]);
  let reference =
    Nd.init [ 4; 5 ] (fun idx ->
        match idx with
        | [ y; x ] ->
            let acc = ref 0. in
            for k = 0 to 5 do
              acc := !acc +. (Nd.get av [ k; y ] *. Nd.get bv [ k; x ])
            done;
            !acc
        | _ -> assert false)
  in
  approx "matmul transposed" reference out

let test_relu_bias_bn () =
  let d = ph "d6" [ 1; 3; 2; 2 ] in
  let scale = ph "sc6" [ 3 ] and shift = ph "sh6" [ 3 ] in
  let bn = Op.scale_shift d scale shift in
  let r = Op.relu bn in
  let dv = Nd.random ~seed:11 [ 1; 3; 2; 2 ] in
  let scv = Nd.random ~seed:12 ~lo:0.5 ~hi:2. [ 3 ] in
  let shv = Nd.random ~seed:13 [ 3 ] in
  let out = Nd.create [ 1; 3; 2; 2 ] in
  ignore (run_default r [ (d, dv); (scale, scv); (shift, shv); (r, out) ]);
  let reference =
    Nd.init [ 1; 3; 2; 2 ] (fun idx ->
        match idx with
        | [ _; c; y; x ] ->
            Float.max 0. ((Nd.get dv [ 0; c; y; x ] *. Nd.get scv [ c ]) +. Nd.get shv [ c ])
        | _ -> assert false)
  in
  approx "bn+relu" reference out

let test_max_pool () =
  let d = ph "d7" [ 1; 2; 4; 4 ] in
  let p = Op.max_pool2d ~name:"t_pool" ~size:2 ~stride:2 d in
  let dv = Nd.random ~seed:14 [ 1; 2; 4; 4 ] in
  let out = Nd.create [ 1; 2; 2; 2 ] in
  ignore (run_default p [ (d, dv); (p, out) ]);
  let reference =
    Nd.init [ 1; 2; 2; 2 ] (fun idx ->
        match idx with
        | [ _; c; y; x ] ->
            List.fold_left Float.max (-1e30)
              [ Nd.get dv [ 0; c; 2 * y; 2 * x ]; Nd.get dv [ 0; c; 2 * y; (2 * x) + 1 ];
                Nd.get dv [ 0; c; (2 * y) + 1; 2 * x ];
                Nd.get dv [ 0; c; (2 * y) + 1; (2 * x) + 1 ] ]
        | _ -> assert false)
  in
  approx "max pool" reference out

let test_global_avg_pool () =
  let d = ph "d8" [ 1; 3; 4; 4 ] in
  let p = Op.global_avg_pool2d ~name:"t_gap" d in
  let dv = Nd.random ~seed:15 [ 1; 3; 4; 4 ] in
  let out = Nd.create [ 1; 3 ] in
  ignore (run_default p [ (d, dv); (p, out) ]);
  let reference =
    Nd.init [ 1; 3 ] (fun idx ->
        match idx with
        | [ _; c ] ->
            let acc = ref 0. in
            for y = 0 to 3 do
              for x = 0 to 3 do
                acc := !acc +. Nd.get dv [ 0; c; y; x ]
              done
            done;
            !acc /. 16.
        | _ -> assert false)
  in
  approx "global avg pool" reference out

let test_softmax () =
  let d = ph "d9" [ 2; 5 ] in
  let s = Op.softmax ~name:"t_sm" d in
  let dv = Nd.random ~seed:16 ~lo:(-3.) ~hi:3. [ 2; 5 ] in
  let out = Nd.create [ 2; 5 ] in
  ignore (run_default s [ (d, dv); (s, out) ]);
  (* rows sum to one and ordering matches the logits *)
  for r = 0 to 1 do
    let sum = ref 0. in
    for c = 0 to 4 do
      sum := !sum +. Nd.get out [ r; c ]
    done;
    Alcotest.(check (float 1e-4)) "row sums to 1" 1.0 !sum
  done;
  checkb "monotone"
    ((Nd.get dv [ 0; 0 ] < Nd.get dv [ 0; 1 ]) = (Nd.get out [ 0; 0 ] < Nd.get out [ 0; 1 ]))

let test_flatten () =
  let d = ph "d10" [ 1; 2; 3; 4 ] in
  let f = Op.flatten ~name:"t_flat" d in
  let dv = Nd.random ~seed:17 [ 1; 2; 3; 4 ] in
  let out = Nd.create [ 1; 24 ] in
  ignore (run_default f [ (d, dv); (f, out) ]);
  checkb "flatten preserves order" (Nd.to_list dv = Nd.to_list out)

let test_conv2d_transpose () =
  let d = ph "d11" [ 1; 2; 3; 3 ] and w = ph "w11" [ 2; 3; 4; 4 ] in
  let c = Op.conv2d_transpose ~name:"t_deconv" ~stride:2 ~padding:1 d w in
  let dv = Nd.random ~seed:18 [ 1; 2; 3; 3 ] and wv = Nd.random ~seed:19 [ 2; 3; 4; 4 ] in
  let out = Nd.create [ 1; 3; 6; 6 ] in
  ignore (run_default c [ (d, dv); (w, wv); (c, out) ]);
  (* scatter reference *)
  let reference = Nd.create [ 1; 3; 6; 6 ] in
  for ic = 0 to 1 do
    for y = 0 to 2 do
      for x = 0 to 2 do
        let v = Nd.get dv [ 0; ic; y; x ] in
        for oc = 0 to 2 do
          for ky = 0 to 3 do
            for kx = 0 to 3 do
              let oy = (y * 2) + ky - 1 and ox = (x * 2) + kx - 1 in
              if oy >= 0 && oy < 6 && ox >= 0 && ox < 6 then
                Nd.set reference [ 0; oc; oy; ox ]
                  (Nd.get reference [ 0; oc; oy; ox ] +. (v *. Nd.get wv [ ic; oc; ky; kx ]))
            done
          done
        done
      done
    done
  done;
  approx ~tol:1e-3 "conv2d transpose" reference out

let test_winograd_matches_direct () =
  let d = ph "d12" [ 1; 4; 8; 8 ] and g = Nd.random ~seed:20 [ 6; 4; 3; 3 ] in
  let u_val = Winograd.pretransform_weights g in
  let u = ph "u12" [ 4; 4; 6; 4 ] in
  let y = Winograd.conv2d_pretransformed ~name:"t_wino" d u in
  let dv = Nd.random ~seed:21 [ 1; 4; 8; 8 ] in
  let out = Nd.create [ 1; 6; 8; 8 ] in
  ignore (run_default y [ (d, dv); (u, u_val); (y, out) ]);
  approx ~tol:1e-3 "winograd == direct" (ref_conv2d ~stride:1 ~pad:1 dv g) out

let test_bitserial_gemm () =
  let d = ph ~dtype:Dtype.UInt2 "d13" [ 4; 16 ] in
  let w = ph ~dtype:Dtype.UInt1 "w13" [ 6; 16 ] in
  let o = Bitserial.bitserial_gemm ~name:"t_bs" d w in
  let dv = Nd.random ~dtype:Dtype.UInt2 ~seed:22 ~lo:0. ~hi:4. [ 4; 16 ] in
  let wv = Nd.random ~dtype:Dtype.UInt1 ~seed:23 ~lo:0. ~hi:2. [ 6; 16 ] in
  let out = Nd.create ~dtype:Dtype.Int32 [ 4; 6 ] in
  ignore (run_default o [ (d, dv); (w, wv); (o, out) ]);
  approx "bitserial gemm" (ref_dense dv wv) out

let test_op_flops () =
  let d = ph "d14" [ 1; 2; 4; 4 ] and w = ph "w14" [ 3; 2; 3; 3 ] in
  let c = Op.conv2d ~name:"t_flops" ~stride:1 d w in
  (* 2 ops (mul+add) per MAC x OC x OH x OW x IC x KH x KW-ish; just
     require the right order of magnitude and positivity. *)
  checkb "conv flops positive" (Tensor.op_flops c > 500.)

let suite =
  [
    Alcotest.test_case "conv2d stride 2" `Quick test_conv2d_strided;
    Alcotest.test_case "conv2d 1x1" `Quick test_conv2d_1x1;
    Alcotest.test_case "depthwise conv2d" `Quick test_depthwise;
    Alcotest.test_case "dense" `Quick test_dense_matmul;
    Alcotest.test_case "matmul transposed" `Quick test_matmul_transposed;
    Alcotest.test_case "scale-shift + relu" `Quick test_relu_bias_bn;
    Alcotest.test_case "max pool" `Quick test_max_pool;
    Alcotest.test_case "global avg pool" `Quick test_global_avg_pool;
    Alcotest.test_case "softmax" `Quick test_softmax;
    Alcotest.test_case "flatten" `Quick test_flatten;
    Alcotest.test_case "conv2d transpose" `Quick test_conv2d_transpose;
    Alcotest.test_case "winograd vs direct" `Quick test_winograd_matches_direct;
    Alcotest.test_case "bitserial gemm" `Quick test_bitserial_gemm;
    Alcotest.test_case "op flops" `Quick test_op_flops;
  ]
