(* Unit + property tests for the tensor IR: dtypes, expression smart
   constructors, interval analysis, simplification, and the loop
   analyses the timing models rely on. *)

open Tvm_tir
module Nd = Tvm_nd.Ndarray

let check = Alcotest.check
let checkb name = Alcotest.(check bool) name true

(* ------------------------------------------------------------------ *)
(* Dtype                                                                *)
(* ------------------------------------------------------------------ *)

let test_dtype_roundtrip () =
  List.iter
    (fun d -> checkb "roundtrip" (Dtype.equal d (Dtype.of_string (Dtype.to_string d))))
    [ Dtype.Float32; Dtype.Float16; Dtype.Int64; Dtype.Int32; Dtype.Int8;
      Dtype.UInt1; Dtype.UInt2; Dtype.Bool ]

let test_dtype_bits () =
  check Alcotest.int "f32 bits" 32 (Dtype.bits Dtype.Float32);
  check (Alcotest.float 1e-9) "uint2 bytes" 0.25 (Dtype.bytes Dtype.UInt2);
  checkb "int8 integer" (Dtype.is_integer Dtype.Int8);
  checkb "f16 float" (Dtype.is_float Dtype.Float16)

(* ------------------------------------------------------------------ *)
(* Expression smart constructors                                        *)
(* ------------------------------------------------------------------ *)

let test_constant_folding () =
  checkb "add" (Expr.equal Expr.(int 2 + int 3) (Expr.int 5));
  checkb "mul0" (Expr.equal Expr.(int 0 * Expr.Var (Expr.Var.fresh "x")) (Expr.int 0));
  let x = Expr.Var (Expr.Var.fresh "x") in
  checkb "add0" (Expr.equal Expr.(x + int 0) x);
  checkb "mul1" (Expr.equal Expr.(x * int 1) x);
  checkb "div1" (Expr.equal Expr.(x / int 1) x);
  checkb "mod1" (Expr.equal Expr.(x % int 1) (Expr.int 0));
  checkb "min self" (Expr.equal (Expr.min_ x x) x);
  checkb "select const" (Expr.equal (Expr.select (Expr.int 1) x (Expr.int 7)) x)

let test_cmp_folding () =
  checkb "lt" (Expr.equal Expr.(int 2 < int 3) (Expr.int 1));
  checkb "ge" (Expr.equal Expr.(int 2 >= int 3) (Expr.int 0));
  checkb "and short" (Expr.equal (Expr.and_ (Expr.int 0) (Expr.Var (Expr.Var.fresh "y"))) (Expr.int 0))

let test_dtype_of () =
  let b = Expr.Buffer.create ~dtype:Dtype.Int8 "b" [ Expr.int 4 ] in
  checkb "load dtype" (Dtype.equal (Expr.dtype_of (Expr.load b [ Expr.zero ])) Dtype.Int8);
  let x = Expr.Var (Expr.Var.fresh "x") in
  checkb "cmp dtype" (Dtype.equal (Expr.dtype_of Expr.(x < int 2)) Dtype.Bool)

let test_buffer () =
  let b = Expr.Buffer.create "buf" [ Expr.int 3; Expr.int 5 ] in
  check Alcotest.(list int) "const shape" [ 3; 5 ] (Expr.Buffer.const_shape b);
  check Alcotest.int "elems" 15 (Expr.Buffer.num_elems b);
  let b2 = Expr.Buffer.with_scope Expr.Shared b in
  checkb "scope changed" (Expr.Buffer.scope b2 = Expr.Shared);
  checkb "distinct id" (not (Expr.Buffer.equal b b2))

(* ------------------------------------------------------------------ *)
(* Interval analysis                                                    *)
(* ------------------------------------------------------------------ *)

let test_interval_basics () =
  let open Interval in
  check Alcotest.int "len" 8 (length (of_extent ~min:0 ~extent:8));
  let a = make 2 5 and b = make (-1) 3 in
  checkb "add" (add a b = make 1 8);
  checkb "mul" (mul (point 3) b = make (-3) 9);
  checkb "union" (union a b = make (-1) 5)

let test_interval_eval () =
  let x = Expr.Var.fresh "x" and y = Expr.Var.fresh "y" in
  let e = Expr.((Var x * int 8) + Var y) in
  let itv =
    Interval.eval_under
      [ (x, Interval.of_extent ~min:0 ~extent:4); (y, Interval.of_extent ~min:0 ~extent:8) ]
      e
  in
  checkb "tile range" (itv = Interval.make 0 31)

let test_interval_divmod () =
  let x = Expr.Var.fresh "x" in
  let env = [ (x, Interval.of_extent ~min:0 ~extent:12) ] in
  checkb "div" (Interval.eval_under env Expr.(Var x / int 4) = Interval.make 0 2);
  checkb "mod crossing" (Interval.eval_under env Expr.(Var x % int 4) = Interval.make 0 3);
  checkb "mod small"
    (Interval.eval_under [ (x, Interval.make 4 6) ] Expr.(Var x % int 8) = Interval.make 4 6)

(* Property: interval evaluation is sound — the concrete value of a
   random affine expression always lies within the computed interval. *)
let interval_soundness =
  QCheck.Test.make ~name:"interval soundness on affine exprs" ~count:200
    QCheck.(quad (int_range 1 6) (int_range 1 6) (int_range (-8) 8) (int_range 1 9))
    (fun (ext_x, ext_y, c, d) ->
      let x = Expr.Var.fresh "x" and y = Expr.Var.fresh "y" in
      let modulus = d + 3 in
      let e = Expr.(((Var x * int d) + (Var y * int c)) % int modulus) in
      let env =
        [ (x, Interval.of_extent ~min:0 ~extent:ext_x);
          (y, Interval.of_extent ~min:0 ~extent:ext_y) ]
      in
      let itv = Interval.eval_under env e in
      let ok = ref true in
      for vx = 0 to ext_x - 1 do
        for vy = 0 to ext_y - 1 do
          let v =
            let m = (vx * d) + (vy * c) in
            let r = m mod modulus in
            if r < 0 then r + modulus else r
          in
          if not (Interval.contains itv v) then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Simplify                                                             *)
(* ------------------------------------------------------------------ *)

let test_simplify_stmt () =
  let v = Expr.Var.fresh "i" in
  let b = Expr.Buffer.create "out" [ Expr.int 4 ] in
  let dead = Stmt.For { Stmt.loop_var = v; min_ = Expr.zero; extent = Expr.int 0;
                        kind = Stmt.Serial; body = Stmt.Store (b, [ Expr.zero ], Expr.f32 1.) } in
  checkb "zero-trip loop removed" (Simplify.stmt dead = Stmt.Skip);
  let taken = Stmt.If_then_else (Expr.int 1, Stmt.Skip, Some (Stmt.Store (b, [ Expr.zero ], Expr.f32 1.))) in
  checkb "taken branch" (Simplify.stmt taken = Stmt.Skip)

let test_single_trip_loop () =
  let v = Expr.Var.fresh "i" in
  let b = Expr.Buffer.create "out" [ Expr.int 4 ] in
  let s = Stmt.for_ v (Expr.int 2) (Expr.int 1) (Stmt.Store (b, [ Expr.Var v ], Expr.f32 1.)) in
  (* single-trip loops become lets, which simplify substitutes away *)
  match Simplify.stmt s with
  | Stmt.Store (_, [ Expr.IntImm 2 ], _) -> ()
  | other -> Alcotest.failf "expected direct store, got %s" (Printer.stmt_to_string other)

(* ------------------------------------------------------------------ *)
(* Analysis                                                             *)
(* ------------------------------------------------------------------ *)

(* A hand-built 2-level tiled copy loop for footprint checks. *)
let tiled_copy () =
  let src = Expr.Buffer.create "src" [ Expr.int 64 ] in
  let dst = Expr.Buffer.create "dst" [ Expr.int 64 ] in
  let o = Expr.Var.fresh "o" and i = Expr.Var.fresh "i" in
  let idx = Expr.((Var o * int 8) + Var i) in
  let body = Stmt.Store (dst, [ idx ], Expr.load src [ idx ]) in
  (Stmt.for_ o Expr.zero (Expr.int 8) (Stmt.for_ i Expr.zero (Expr.int 8) body), src, dst)

let test_collect_accesses () =
  let stmt, src, _ = tiled_copy () in
  let accesses = Analysis.collect_accesses stmt in
  check Alcotest.int "two accesses" 2 (List.length accesses);
  let load = List.find (fun a -> not a.Analysis.acc_is_store) accesses in
  checkb "load buffer" (Expr.Buffer.equal load.Analysis.acc_buffer src);
  check Alcotest.int "count" 64 load.Analysis.acc_count

let test_footprints () =
  let stmt, _, _ = tiled_copy () in
  let load =
    List.find (fun a -> not a.Analysis.acc_is_store) (Analysis.collect_accesses stmt)
  in
  check Alcotest.int "whole" 64 (Analysis.footprint_at_level load 0);
  check Alcotest.int "inner tile" 8 (Analysis.footprint_at_level load 1);
  check Alcotest.int "point" 1 (Analysis.footprint_at_level load 2)

let test_strides () =
  let stmt, _, _ = tiled_copy () in
  let load =
    List.find (fun a -> not a.Analysis.acc_is_store) (Analysis.collect_accesses stmt)
  in
  (match load.Analysis.acc_loops with
  | [ o; i ] ->
      checkb "stride o" (Analysis.stride_wrt load o.Analysis.lvar = Some 8);
      checkb "stride i" (Analysis.stride_wrt load i.Analysis.lvar = Some 1)
  | _ -> Alcotest.fail "expected two loops");
  checkb "unit innermost" (Analysis.is_unit_stride_innermost load)

let test_flops () =
  let b = Expr.Buffer.create "acc" [ Expr.int 1 ] in
  let v = Expr.Var.fresh "k" in
  let body =
    Stmt.Store (b, [ Expr.zero ],
      Expr.(Expr.load b [ Expr.zero ] + (Expr.load b [ Expr.zero ] * f32 3.)))
  in
  let loop = Stmt.for_ v Expr.zero (Expr.int 10) body in
  check (Alcotest.float 1e-9) "2 flops x 10" 20. (Analysis.flops loop)

let test_ann_summary () =
  let v = Expr.Var.fresh "p" in
  let b = Expr.Buffer.create "o" [ Expr.int 4 ] in
  let s = Stmt.For { Stmt.loop_var = v; min_ = Expr.zero; extent = Expr.int 4;
                     kind = Stmt.Parallel; body = Stmt.Store (b, [ Expr.Var v ], Expr.f32 0.) } in
  let ann = Analysis.ann_summary s in
  check Alcotest.int "parallel" 1 ann.Analysis.n_parallel;
  check Alcotest.int "serial" 0 ann.Analysis.n_serial

(* ------------------------------------------------------------------ *)
(* Visit / substitution                                                 *)
(* ------------------------------------------------------------------ *)

let test_subst () =
  let x = Expr.Var.fresh "x" in
  let e = Expr.((Var x * int 2) + int 1) in
  let e' = Visit.subst_var_expr x (Expr.int 5) e in
  checkb "subst folds" (Expr.equal e' (Expr.int 11))

let test_free_vars () =
  let x = Expr.Var.fresh "x" and y = Expr.Var.fresh "y" in
  let e = Expr.((Var x + Var y) * Var x) in
  check Alcotest.int "two free vars" 2 (List.length (Visit.free_vars e))

let test_retarget () =
  let b1 = Expr.Buffer.create "a" [ Expr.int 8 ] in
  let b2 = Expr.Buffer.create "b" [ Expr.int 8 ] in
  let v = Expr.Var.fresh "i" in
  let s = Stmt.for_ v Expr.zero (Expr.int 8)
      (Stmt.Store (b1, [ Expr.Var v ], Expr.load b1 [ Expr.Var v ])) in
  let s' = Visit.retarget_buffer ~old_b:b1 ~new_b:b2 ~remap:Fun.id s in
  let uses_b1 = ref false in
  Stmt.iter
    (function Stmt.Store (b, _, _) when Expr.Buffer.equal b b1 -> uses_b1 := true | _ -> ())
    s';
  checkb "no b1 store left" (not !uses_b1)

let suite =
  [
    Alcotest.test_case "dtype roundtrip" `Quick test_dtype_roundtrip;
    Alcotest.test_case "dtype bits" `Quick test_dtype_bits;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "cmp folding" `Quick test_cmp_folding;
    Alcotest.test_case "dtype_of" `Quick test_dtype_of;
    Alcotest.test_case "buffer" `Quick test_buffer;
    Alcotest.test_case "interval basics" `Quick test_interval_basics;
    Alcotest.test_case "interval eval" `Quick test_interval_eval;
    Alcotest.test_case "interval div/mod" `Quick test_interval_divmod;
    QCheck_alcotest.to_alcotest interval_soundness;
    Alcotest.test_case "simplify stmt" `Quick test_simplify_stmt;
    Alcotest.test_case "single-trip loop" `Quick test_single_trip_loop;
    Alcotest.test_case "collect accesses" `Quick test_collect_accesses;
    Alcotest.test_case "footprints" `Quick test_footprints;
    Alcotest.test_case "strides" `Quick test_strides;
    Alcotest.test_case "flops" `Quick test_flops;
    Alcotest.test_case "ann summary" `Quick test_ann_summary;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "free vars" `Quick test_free_vars;
    Alcotest.test_case "retarget buffer" `Quick test_retarget;
  ]
