(** Benchmark harness: regenerates every table and figure of the paper
    (see DESIGN.md's per-experiment index), the ablation studies, and a
    set of Bechamel micro-benchmarks over the compiler's own hot paths.

    Usage: [main.exe [--quick] [--json FILE] [--baseline FILE] [-j N]
    [exp ...]] where [exp] is one of fig4 fig6 fig7 fig10 fig12 fig14
    fig15 fig16 fig17 fig18 fig19 fig21 table1 table2 ablations partune
    lower cache serve serve_rt fleet micro all (default: all). [-j N]
    sets the domain/device
    count the [partune] throughput comparison scales to (default 4).

    [--json FILE] dumps the observability metrics registry (including
    one [bench.<exp>.duration_s] gauge per experiment run) as JSON —
    e.g. [--json BENCH_obs.json] — so the perf trajectory of the repo
    is machine-readable PR over PR.

    [--baseline FILE] compares the run's metrics against a committed
    baseline dump under {!Tvm_obs.Bench_gate.default_rules} and exits
    nonzero on regression — the [make check-bench] gate. Update the
    baseline with [make bench-baseline] when a change legitimately
    moves the numbers. *)

module E = Tvm_experiments.Exp_util
module Fm = Tvm_experiments.Fig_micro
module Fe = Tvm_experiments.Fig_e2e
module Ab = Tvm_experiments.Ablations

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure, measuring the       *)
(* compiler machinery behind that experiment.                           *)
(* ------------------------------------------------------------------ *)

(** Domain/device count for the multicore comparisons ([-j N]). *)
let bench_jobs = ref 4

let micro () =
  let open Bechamel in
  let open Toolkit in
  E.banner "Bechamel micro-benchmarks (compiler hot paths per experiment)";
  let tpl, _ = Fm.fig12_template () in
  let rng = Random.State.make [| 3 |] in
  let some_cfg =
    let rec find n =
      if n = 0 then invalid_arg "no valid config"
      else
        let cfg = Tvm_autotune.Cfg_space.random_config tpl.Tvm_autotune.Tuner.tpl_space rng in
        match (try Some (tpl.Tvm_autotune.Tuner.tpl_instantiate cfg) with _ -> None) with
        | Some _ -> cfg
        | None -> find (n - 1)
    in
    find 200
  in
  let stmt = tpl.Tvm_autotune.Tuner.tpl_instantiate some_cfg in
  let feats =
    Array.init 64 (fun i ->
        Array.init Tvm_autotune.Feature.length (fun j ->
            Float.of_int ((i * 31 + j * 17) mod 97) /. 97.))
  in
  let ys = Array.init 64 (fun i -> Float.of_int (i mod 13) /. 13.) in
  let gbt = Tvm_autotune.Gbt.fit feats ys in
  let wl = Fe.V.gemm_workload ~name:"bench_vdla" ~m:64 ~n:64 ~k:256 () in
  let vdla_stream =
    let s = Fe.V.schedule ~vthreads:2 wl in
    Tvm_vdla.Assemble.run s
  in
  let tests =
    [
      Test.make ~name:"fig5.schedule+lower.conv2d"
        (Staged.stage (fun () -> tpl.Tvm_autotune.Tuner.tpl_instantiate some_cfg));
      Test.make ~name:"fig13.feature.extraction"
        (Staged.stage (fun () -> Tvm_autotune.Feature.extract stmt));
      Test.make ~name:"table1.gbt.fit64"
        (Staged.stage (fun () -> Tvm_autotune.Gbt.fit feats ys));
      Test.make ~name:"fig12.gbt.predict"
        (Staged.stage (fun () -> Tvm_autotune.Gbt.predict gbt feats.(0)));
      Test.make ~name:"fig14.gpu.model"
        (Staged.stage (fun () -> Tvm_sim.Gpu_model.estimate Tvm_sim.Machine.titan_x stmt));
      Test.make ~name:"fig16.cpu.model"
        (Staged.stage (fun () -> Tvm_sim.Cpu_model.estimate Tvm_sim.Machine.arm_a53 stmt));
      Test.make ~name:"fig10.vdla.des"
        (Staged.stage (fun () -> Tvm_vdla.Des.run Tvm_sim.Machine.vdla vdla_stream));
      Test.make ~name:"fig8.vthread.lowering"
        (Staged.stage (fun () -> Fe.V.schedule ~vthreads:2 wl));
    ]
  in
  (* Multicore cases: fork-join overhead of [parallel_map] itself (the
     per-batch fixed cost every parallel tuning phase pays) and the SA
     explorer's chain scaling, at -j1 vs -jN. *)
  let par1 = Tvm_par.Pool.sequential in
  let parn = Tvm_par.Pool.create ~domains:!bench_jobs () in
  let work = Array.init 64 (fun i -> i) in
  let spin x =
    (* ~µs-scale task, comparable to one model prediction *)
    let acc = ref (float_of_int x) in
    for _ = 1 to 400 do
      acc := !acc +. Float.sin !acc
    done;
    !acc
  in
  let sa_space =
    Tvm_autotune.Cfg_space.space
      [
        Tvm_autotune.Cfg_space.knob "a" (List.init 8 (fun i -> i + 1));
        Tvm_autotune.Cfg_space.knob "b" (List.init 8 (fun i -> i + 1));
        Tvm_autotune.Cfg_space.knob "c" (List.init 8 (fun i -> i + 1));
      ]
  in
  let synth_predict _ cfg =
    Float.sin (float_of_int (Tvm_autotune.Cfg_space.hash cfg land 0xFFFF))
  in
  let sa_case pool =
    let rng = Random.State.make [| 5 |] in
    let state = Tvm_autotune.Explorers.sa_init sa_space rng ~n_chains:8 in
    Tvm_autotune.Explorers.simulated_annealing ~pool sa_space rng state
      ~predict_for_chain:synth_predict ~visited:(Hashtbl.create 8) ~n_steps:40
      ~temp:1.0 ~batch:16
  in
  let tests =
    tests
    @ [
        Test.make ~name:"par.map.j1"
          (Staged.stage (fun () -> Tvm_par.Pool.parallel_map par1 spin work));
        Test.make
          ~name:(Printf.sprintf "par.map.j%d" !bench_jobs)
          (Staged.stage (fun () -> Tvm_par.Pool.parallel_map parn spin work));
        Test.make ~name:"par.sa_chains.j1"
          (Staged.stage (fun () -> sa_case par1));
        Test.make
          ~name:(Printf.sprintf "par.sa_chains.j%d" !bench_jobs)
          (Staged.stage (fun () -> sa_case parn));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ ns ] -> Printf.printf "%-40s %12.1f ns/run\n" name ns
          | _ -> Printf.printf "%-40s (no estimate)\n" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* tvmd service                                                         *)
(* ------------------------------------------------------------------ *)

module Sv = Tvm_serve.Tvmd
module Sch = Tvm_serve.Scheduler
module Js = Tvm_spec.Job_spec

(* A mixed trace from three tenants (weights 2:1:1) through tvmd:
   tuning, compiles and a profile. Records the service SLOs
   ([tvmd.queue_wait_s] / [tvmd.completion_s] histograms — p50/p90/p99
   land in the JSON dump), the warm-restart repeat-compile speedup and
   a schedule-determinism check across -j. All latencies are
   virtual-clock, so every number here is deterministic. *)
let bench_serve () =
  let req op tenant weight workload submit =
    Sv.request ~tenant ~weight ~submit_s:submit
      (Js.make ~op ~workload ~trials:(if op = Js.Profile then 0 else 12)
         ~method_name:"random" ~jobs:!bench_jobs ())
  in
  let trace =
    [
      req Js.Tune "alpha" 2. "C1" 0.;
      req Js.Compile "alpha" 2. "dqn" 0.;
      req Js.Tune "beta" 1. "C2" 0.;
      req Js.Profile "beta" 1. "dqn" 0.5;
      req Js.Tune "gamma" 1. "C3" 0.2;
      req Js.Compile "gamma" 1. "dqn" 0.6;
    ]
  in
  let store = Filename.temp_file "tvmd_bench" ".store" in
  Sys.remove store;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists store then Sys.remove store)
  @@ fun () ->
  let service_of (o : Sv.outcome) id =
    List.find_map
      (fun (c : Sv.request Sch.completion) ->
        if c.Sch.cp_job.Sch.jb_id = id then Some c.Sch.cp_service_s else None)
      o.Sv.oc_completions
    |> Option.get
  in
  (* Cold: empty store, cleared tuned cache — compiles pay for tuning. *)
  Tvm.Compiler.clear_cache ();
  let cold = Sv.serve ~slots:2 ~store trace in
  (* Warm restart (fresh process state, warm store) plus one new
     submission of the already-tuned compile: the repeat-compile probe. *)
  Tvm.Compiler.clear_cache ();
  let warm = Sv.serve ~slots:2 ~store (trace @ [ req Js.Compile "alpha" 2. "dqn" 9. ]) in
  let cold_compile = Float.max (service_of cold 1) (service_of cold 5) in
  let warm_compile = service_of warm (List.length trace) in
  let speedup = cold_compile /. warm_compile in
  Tvm_obs.Metrics.set_gauge "bench.serve.warm_speedup" speedup;
  (* Determinism across -j: the same trace at -j1 must schedule, charge
     and summarize identically, line for line. *)
  Tvm.Compiler.clear_cache ();
  let j1 =
    Sv.serve ~slots:2
      (List.map
         (fun r -> { r with Sv.rq_spec = { r.Sv.rq_spec with Js.jobs = 1 } })
         trace)
  in
  let identical = j1.Sv.oc_lines = cold.Sv.oc_lines in
  (* Concurrent lanes: a tune-heavy four-tenant trace. At --slots 4 the
     fair-share schedule overlaps the tenants' jobs, so the virtual
     makespan shrinks vs the same trace serialized at --slots 1. All
     latencies are virtual-clock — the gauge is deterministic and
     independent of the host's core count. *)
  let makespan (o : Sv.outcome) =
    List.fold_left
      (fun acc (c : Sv.request Sch.completion) ->
        Float.max acc c.Sch.cp_finish_s)
      0. o.Sv.oc_completions
  in
  let scale_trace =
    List.concat_map
      (fun (tenant, wl) ->
        [ req Js.Tune tenant 1. wl 0.; req Js.Compile tenant 1. wl 0.1 ])
      [ ("alpha", "C1"); ("beta", "C2"); ("gamma", "C3"); ("delta", "C7") ]
  in
  Tvm.Compiler.clear_cache ();
  let s1 = Sv.serve ~slots:1 scale_trace in
  Tvm.Compiler.clear_cache ();
  let s4 = Sv.serve ~slots:4 scale_trace in
  let concurrent_speedup = makespan s1 /. makespan s4 in
  Tvm_obs.Metrics.set_gauge "tvmd.concurrent_speedup" concurrent_speedup;
  (* Determinism must also hold at 4 lanes: -j1 vs -j!bench_jobs, line
     for line. *)
  Tvm.Compiler.clear_cache ();
  let s4_j1 =
    Sv.serve ~slots:4
      (List.map
         (fun r -> { r with Sv.rq_spec = { r.Sv.rq_spec with Js.jobs = 1 } })
         scale_trace)
  in
  let identical4 = s4_j1.Sv.oc_lines = s4.Sv.oc_lines in
  Tvm_obs.Metrics.set_gauge "bench.serve.identical_schedule"
    (if identical && identical4 then 1. else 0.);
  (* Store compaction: run a compile/profile-heavy trace cold, then
     three warm restarts — each restart refreshes every done record, so
     the store accretes superseded copies. Compaction must reclaim the
     dead weight while keeping every live record. *)
  let cstore = Filename.temp_file "tvmd_compact" ".store" in
  Sys.remove cstore;
  let compact_ratio =
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists cstore then Sys.remove cstore)
    @@ fun () ->
    let creq op tenant workload submit trials =
      Sv.request ~tenant ~submit_s:submit
        (Js.make ~op ~workload ~trials ~method_name:"random" ~jobs:!bench_jobs
           ())
    in
    let ctrace =
      [
        creq Js.Compile "alpha" "dqn" 0. 2;
        creq Js.Profile "alpha" "dqn" 0.1 0;
        creq Js.Profile "alpha" "dcgan" 0.2 0;
        creq Js.Profile "beta" "dqn" 0. 0;
        creq Js.Profile "beta" "dcgan" 0.2 0;
        creq Js.Profile "beta" "lstm" 0.4 0;
        creq Js.Profile "gamma" "dcgan" 0. 0;
        creq Js.Profile "gamma" "dqn" 0.3 0;
        creq Js.Profile "gamma" "lstm" 0.5 0;
      ]
    in
    for _ = 0 to 3 do
      Tvm.Compiler.clear_cache ();
      ignore (Sv.serve ~slots:2 ~store:cstore ctrace)
    done;
    match Tvm_autotune.Store.compact ~rules:Sv.store_rules cstore with
    | Some (before, after) ->
        1. -. (float_of_int after /. float_of_int (max 1 before))
    | None -> 0.
  in
  Tvm_obs.Metrics.set_gauge "store.compact_ratio" compact_ratio;
  (* Dispatch scalability: a 1000-job backlog across 8 tenants with
     unit services — exercises the per-tenant ready index and the
     in-flight pruning on a queue three orders of magnitude deeper than
     the service traces above. Timing gauge only (no gate rule: it is
     wall-clock). *)
  let backlog =
    List.init 1000 (fun i ->
        {
          Sch.jb_id = i;
          jb_tenant = Printf.sprintf "t%d" (i mod 8);
          jb_priority = i mod 3;
          jb_submit_s = float_of_int (i / 100);
          jb_payload = ();
        })
  in
  let backlog_tenants =
    List.init 8 (fun i -> Sch.tenant (Printf.sprintf "t%d" i))
  in
  let t_backlog = Unix.gettimeofday () in
  let backlog_done =
    Sch.run ~slots:4 ~tenants:backlog_tenants
      ~execute:(fun _ ~attempt:_ -> Ok 0.01)
      backlog
  in
  let backlog_s = Unix.gettimeofday () -. t_backlog in
  assert (List.length backlog_done = 1000);
  Tvm_obs.Metrics.set_gauge "bench.sched.backlog_1k_s" backlog_s;
  let pct name p =
    match Tvm_obs.Metrics.percentile name p with Some v -> v | None -> nan
  in
  Printf.printf
    "tvmd: %d jobs over 3 tenants (2:1:1), %d restored on warm restart\n"
    (List.length trace) warm.Sv.oc_restored;
  Printf.printf "  queue wait  p50 %.3fs  p90 %.3fs  p99 %.3fs\n"
    (pct "tvmd.queue_wait_s" 50.) (pct "tvmd.queue_wait_s" 90.)
    (pct "tvmd.queue_wait_s" 99.);
  Printf.printf "  completion  p50 %.3fs  p90 %.3fs  p99 %.3fs\n"
    (pct "tvmd.completion_s" 50.) (pct "tvmd.completion_s" 90.)
    (pct "tvmd.completion_s" 99.);
  Printf.printf "  repeat compile: cold %.3fs -> warm %.3fs (%.1fx)\n"
    cold_compile warm_compile speedup;
  Printf.printf "  schedule identical at -j1 vs -j%d (slots 2 and 4): %b\n"
    !bench_jobs (identical && identical4);
  Printf.printf "  virtual makespan: slots 1 %.3fs -> slots 4 %.3fs (%.1fx)\n"
    (makespan s1) (makespan s4) concurrent_speedup;
  Printf.printf "  store compaction reclaimed %.0f%%\n"
    (100. *. compact_ratio);
  Printf.printf "  1000-job backlog dispatched in %.3fs (wall)\n" backlog_s

(* ------------------------------------------------------------------ *)
(* Serving executor                                                     *)
(* ------------------------------------------------------------------ *)

module Ms = Tvm_serve.Model_server
module Tr = Tvm_serve.Traffic

(* The ISSUE-10 serving gates: load the five-model serving suite, drive
   it with a saturating open-loop trace (8 tenants at 2500 req/s), and
   lock in (1) dynamic batching ≥ 2x unbatched throughput at batch 8,
   (2) the shared slab arena saving ≥ 30% vs per-request naive buffers
   at concurrency 8, (3) byte-identical results across load lanes and
   reruns. All virtual-clock, so every number is deterministic. *)
let bench_serve_rt () =
  E.banner "Serving executor: dynamic batching, slab arena, hetero dispatch";
  let graphs = Tvm_models.Models.serving_suite () in
  let cfg max_batch = Ms.config ~max_batch ~max_delay_s:2e-3 ~max_inflight:8 () in
  let trace =
    Tr.generate ~seed:0 ~horizon_s:0.2
      (List.init 8 (fun i ->
           Tr.tenant ~rate_hz:2500. ~slo_s:0.25
             ~model:(fst (List.nth graphs (i mod List.length graphs)))
             (Printf.sprintf "tenant%d" i)))
  in
  let server = Ms.load (cfg 8) graphs in
  List.iter
    (fun (m : Ms.model) ->
      Printf.printf "  %-12s est %6.3f ms/batch1  %s\n" m.Ms.mv_name
        (1e3 *. m.Ms.mv_time1_s)
        (String.concat "  "
           (List.map (fun (d, n) -> Printf.sprintf "%s=%d" d n) m.Ms.mv_placement)))
    (Ms.models server);
  let batched = Ms.run server trace in
  let unbatched = Ms.run (Ms.load (cfg 1) graphs) trace in
  let speedup =
    batched.Ms.oc_throughput_rps /. Float.max 1e-9 unbatched.Ms.oc_throughput_rps
  in
  Printf.printf
    "  %d requests: batched %8.0f req/s (mean batch %.2f) vs unbatched %8.0f \
     req/s -> %.2fx\n"
    (List.length trace) batched.Ms.oc_throughput_rps batched.Ms.oc_mean_batch
    unbatched.Ms.oc_throughput_rps speedup;
  Printf.printf
    "  latency ms p50/p90/p99: %.3f / %.3f / %.3f (batched), slo misses %d\n"
    (1e3 *. batched.Ms.oc_p50_s) (1e3 *. batched.Ms.oc_p90_s)
    (1e3 *. batched.Ms.oc_p99_s) batched.Ms.oc_slo_misses;
  Printf.printf
    "  slab arena %.2f MB vs %.2f MB naive in-flight peak: %.0f%% saved (%d \
     reuses)\n"
    (batched.Ms.oc_slab_bytes /. 1e6)
    (batched.Ms.oc_naive_bytes /. 1e6)
    (100. *. batched.Ms.oc_slab_saving)
    batched.Ms.oc_slab_reuses;
  (* Determinism: byte-identical completion lines when the models are
     loaded over 4 lanes, and on a plain rerun. *)
  let o4 = Ms.run (Ms.load ~lanes:4 (cfg 8) graphs) trace in
  let rerun = Ms.run server trace in
  let identical =
    Ms.results_lines batched = Ms.results_lines o4
    && Ms.results_lines batched = Ms.results_lines rerun
  in
  Printf.printf "  results across -j1/-j4/rerun: %s\n"
    (if identical then "identical" else "DIFFER (bug!)");
  Tvm_obs.Metrics.set_gauge "serve_rt.batch_speedup" speedup;
  Tvm_obs.Metrics.set_gauge "serve_rt.slab_saving" batched.Ms.oc_slab_saving;
  Tvm_obs.Metrics.set_gauge "serve_rt.identical_results"
    (if identical then 1. else 0.);
  (* Leave the batched run's gauges in the registry (the unbatched and
     determinism runs overwrote them). *)
  Tvm_obs.Metrics.set_gauge "serve_rt.throughput_rps" batched.Ms.oc_throughput_rps;
  Tvm_obs.Metrics.set_gauge "serve_rt.slab_bytes" batched.Ms.oc_slab_bytes;
  Tvm_obs.Metrics.set_gauge "serve_rt.naive_bytes" batched.Ms.oc_naive_bytes;
  Tvm_obs.Metrics.set_gauge "serve_rt.mean_batch" batched.Ms.oc_mean_batch;
  Tvm_obs.Metrics.set_gauge "serve_rt.slo_misses"
    (float_of_int batched.Ms.oc_slo_misses)

(* ------------------------------------------------------------------ *)
(* Measurement fleet                                                    *)
(* ------------------------------------------------------------------ *)

module Fl = Tvm_rpc.Fleet

(* Fleet scaling: one fixed synthetic workload dispatched to sharded
   fleets of 8/64/256/1000 heterogeneous devices. Everything is
   virtual-clock ([Fleet.simulate]), so the makespans, the scaling
   efficiency ((T(8)/T(256)) / (usable(256)/usable(8))), the steal rate
   and the speculation speedup are all deterministic and gate-able. *)
let bench_fleet () =
  E.banner "Measurement fleet: sharded scaling, stealing, speculation";
  let kind = Tvm_rpc.Device_pool.Gpu_dev Tvm_sim.Machine.titan_x in
  let n_jobs = 2000 in
  (* Deterministic spread of model times around ~77 ms: with per-job
     dispatch 0.05 s and 3 repeats, one job charges ~0.28 s. *)
  let costs =
    Array.init n_jobs (fun i ->
        0.06 +. (0.04 *. float_of_int (i mod 7) /. 7.))
  in
  let run_at d =
    let f = Fl.session (Fl.catalog (Fl.mixed_kinds d)) in
    let r = Fl.simulate f ~kind ~cost_s:costs in
    assert (Array.length r = n_jobs);
    (Fl.makespan f, Fl.usable f ~kind, Fl.stats f)
  in
  let sizes = [ 8; 64; 256; 1000 ] in
  let results = List.map (fun d -> (d, run_at d)) sizes in
  List.iter
    (fun (d, (mk, usable, st)) ->
      Tvm_obs.Metrics.set_gauge
        (Printf.sprintf "bench.fleet.makespan_%d" d)
        mk;
      Printf.printf
        "  %4d devices (%3d usable, %2d shards): makespan %8.2f s, %4d \
         steals (%4d jobs moved)\n"
        d usable st.Fl.fs_shards mk st.Fl.fs_steals st.Fl.fs_stolen_jobs)
    results;
  let span d = match List.assoc d results with mk, _, _ -> mk in
  let usable_at d = match List.assoc d results with _, u, _ -> u in
  let perfect = float_of_int (usable_at 256) /. float_of_int (usable_at 8) in
  let efficiency = span 8 /. span 256 /. perfect in
  Tvm_obs.Metrics.set_gauge "bench.fleet.scaling_efficiency" efficiency;
  Printf.printf "  scaling efficiency 8 -> 256 devices: %.2f (perfect = 1.0)\n"
    efficiency;
  (* Work stealing under imbalance: a homogeneous-kind fleet whose
     first shard is made of 4x-slow devices. Batched dispatch hands
     every shard an equal slice, so the fast shards must drain the slow
     shard's backlog for the makespan to stay near the fast-device
     bound. *)
  let steal_rate =
    let roster =
      List.init 64 (fun i -> (kind, if i < 8 then 4.0 else 1.0))
    in
    let f = Fl.session (Fl.catalog ~shards:8 roster) in
    let r = Fl.simulate f ~kind ~cost_s:costs in
    assert (Array.length r = n_jobs);
    let st = Fl.stats f in
    Printf.printf
      "  imbalanced 64-device fleet: makespan %.2f s, %d steals moved %d \
       of %d jobs\n"
      (Fl.makespan f) st.Fl.fs_steals st.Fl.fs_stolen_jobs n_jobs;
    100. *. float_of_int st.Fl.fs_stolen_jobs /. float_of_int n_jobs
  in
  Tvm_obs.Metrics.set_gauge "bench.fleet.steal_rate" steal_rate;
  Printf.printf "  steal rate under imbalance: %.1f%% of jobs moved shard\n"
    steal_rate;
  (* Speculation: a 64-device fleet with one 12x straggler of the
     target kind. Speculation must cut the straggler-dominated tail of
     the makespan without changing a single result. *)
  let spec_jobs = 300 in
  let spec_costs = Array.sub costs 0 spec_jobs in
  let run_spec speculate =
    let f =
      Fl.session
        (Fl.catalog ~speculate (Fl.mixed_kinds ~straggler:0 64))
    in
    let r = Fl.simulate f ~kind ~cost_s:spec_costs in
    (Fl.makespan f, r, Fl.stats f)
  in
  let mk_off, r_off, _ = run_spec false in
  let mk_on, r_on, st_on = run_spec true in
  let spec_speedup = mk_off /. Float.max 1e-9 mk_on in
  let identical = r_off = r_on in
  Tvm_obs.Metrics.set_gauge "bench.fleet.speculation_speedup" spec_speedup;
  Tvm_obs.Metrics.set_gauge "bench.fleet.spec_identical"
    (if identical then 1. else 0.);
  Printf.printf
    "  straggler makespan: %.2f s -> %.2f s with speculation (%.2fx, %d \
     launched / %d won); results %s\n"
    mk_off mk_on spec_speedup st_on.Fl.fs_spec_launched st_on.Fl.fs_spec_wins
    (if identical then "identical" else "DIFFER (bug!)")

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments : (string * (unit -> unit)) list =
  [
    ("table1", fun () -> Fm.table1 ());
    ("table2", fun () -> Fm.table2 ());
    ("fig4", fun () -> ignore (Fm.fig4 ()));
    ("fig6", fun () -> Fm.fig6 ());
    ("fig7", fun () -> ignore (Fm.fig7 ()));
    ("fig10", fun () -> ignore (Fm.fig10 ()));
    ("fig12", fun () -> ignore (Fm.fig12 ()));
    ("fig14", fun () -> ignore (Fe.fig14 ()));
    ("fig15", fun () -> ignore (Fe.fig15 ()));
    ("fig16", fun () -> ignore (Fe.fig16 ()));
    ("fig17", fun () -> ignore (Fe.fig17 ()));
    ( "fig18",
      fun () ->
        ignore (Fe.fig18 ());
        ignore (Fe.fig18_tensorize_ablation ()) );
    ("fig19", fun () -> ignore (Fe.fig19 ()));
    ("fig21", fun () -> ignore (Fe.fig21 ()));
    ( "ablations",
      fun () ->
        ignore (Ab.ablation_features ());
        ignore (Ab.ablation_explorer ());
        ignore (Ab.ablation_memplan ());
        ignore (Ab.ablation_layout ());
        ignore (Ab.ablation_fusion ()) );
    ("partune", fun () -> ignore (Fm.partune ~jobs:!bench_jobs ()));
    ("lower", fun () -> ignore (Fm.bench_lower ()));
    ("cache", fun () -> ignore (Fm.bench_cache ()));
    ("serve", bench_serve);
    ("serve_rt", bench_serve_rt);
    ("fleet", fun () -> bench_fleet ());
    ("micro", micro);
  ]

(** Pull [--json FILE] out of the raw argument list. *)
let rec extract_json_flag = function
  | [] -> (None, [])
  | "--json" :: file :: rest ->
      let _, others = extract_json_flag rest in
      (Some file, others)
  | "--json" :: [] -> invalid_arg "--json requires a FILE argument"
  | a :: rest ->
      let file, others = extract_json_flag rest in
      (file, a :: others)

(** Pull [--baseline FILE] out of the raw argument list. *)
let rec extract_baseline_flag = function
  | [] -> (None, [])
  | "--baseline" :: file :: rest ->
      let _, others = extract_baseline_flag rest in
      (Some file, others)
  | "--baseline" :: [] -> invalid_arg "--baseline requires a FILE argument"
  | a :: rest ->
      let file, others = extract_baseline_flag rest in
      (file, a :: others)

(** Pull [-j N] out of the raw argument list. *)
let rec extract_jobs_flag = function
  | [] -> (None, [])
  | "-j" :: n :: rest ->
      let _, others = extract_jobs_flag rest in
      (Some (int_of_string n), others)
  | "-j" :: [] -> invalid_arg "-j requires a count argument"
  | a :: rest ->
      let n, others = extract_jobs_flag rest in
      (n, a :: others)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  Tvm_graph.Std_ops.register_all ();
  let args = Array.to_list Sys.argv |> List.tl in
  let json_out, args = extract_json_flag args in
  let baseline, args = extract_baseline_flag args in
  let jobs, args = extract_jobs_flag args in
  Option.iter (fun j -> bench_jobs := max 1 j) jobs;
  let quick = List.mem "--quick" args in
  if quick then E.trial_scale := 0.3;
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let wanted = if wanted = [] || List.mem "all" wanted then List.map fst experiments else wanted in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let t = Unix.gettimeofday () in
          (try f ()
           with e ->
             Printf.printf "!! experiment %s failed: %s\n" name (Printexc.to_string e);
             Tvm_obs.Metrics.incr "bench.failures");
          let dt = Unix.gettimeofday () -. t in
          Tvm_obs.Metrics.set_gauge ("bench." ^ name ^ ".duration_s") dt;
          Printf.printf "[%s done in %.1fs]\n%!" name dt
      | None -> Printf.printf "unknown experiment %s\n" name)
    wanted;
  Printf.printf "\ntotal benchmark time: %.1fs\n" (Unix.gettimeofday () -. t0);
  (match json_out with
  | Some path ->
      Tvm_obs.Metrics.write_json path;
      Printf.printf "metrics written to %s\n" path
  | None -> ());
  match baseline with
  | None -> ()
  | Some path ->
      let base = Tvm_obs.Json.parse (read_file path) in
      let checks =
        Tvm_obs.Bench_gate.compare_metrics
          ~rules:Tvm_obs.Bench_gate.default_rules ~baseline:base
          ~current:(Tvm_obs.Metrics.to_json ())
      in
      Printf.printf "\nregression gate vs %s:\n%s" path
        (Tvm_obs.Bench_gate.render checks);
      if Tvm_obs.Bench_gate.failed checks <> [] then exit 1
