(* End-to-end tests: the five networks build, compile through the full
   stack, and the compiled kernels agree with reference execution. *)

module G = Tvm_graph.Graph_ir
module Models = Tvm_models.Models
module Workloads = Tvm_models.Workloads
module Exec = Tvm_runtime.Graph_executor
module Nd = Tvm_nd.Ndarray
module Vendor = Tvm_baselines.Vendor
module Framework = Tvm_baselines.Framework
module Machine = Tvm_sim.Machine
open Test_helpers

let spec = Tvm_spec.Job_spec.make ~trials:12 ()

let compile_and_check ?(tol = 2e-3) name graph target =
  let _, exec = Tvm.Compiler.build_executor ~spec graph target in
  Exec.set_params exec (Models.random_params graph);
  List.iter (fun (n, v) -> Exec.set_input exec n v) (Models.random_inputs graph);
  Exec.run ~mode:`Reference exec;
  let reference = Nd.copy (Exec.get_output exec 0) in
  Exec.run ~mode:`Compiled exec;
  let compiled = Exec.get_output exec 0 in
  checkb (name ^ " compiled == reference") (Nd.equal_approx ~tol reference compiled);
  checkb (name ^ " finite latency") (Float.is_finite (Exec.estimated_time_s exec));
  exec

let test_resnet_gpu () =
  ignore
    (compile_and_check "resnet18"
       (Models.resnet18 ~input_hw:32 ~width:0.125 ~num_classes:10 ())
       (Tvm.Target.cuda ()))

let test_resnet_cpu () =
  ignore
    (compile_and_check "resnet18-cpu"
       (Models.resnet18 ~input_hw:32 ~width:0.125 ~num_classes:10 ())
       (Tvm.Target.arm_cpu ()))

let test_mobilenet () =
  ignore
    (compile_and_check "mobilenet"
       (Models.mobilenet ~input_hw:32 ~width:0.125 ~num_classes:10 ())
       (Tvm.Target.cuda ()))

let test_dqn () =
  ignore (compile_and_check "dqn" (Models.dqn ~input_hw:40 ()) (Tvm.Target.cuda ()))

let test_lstm () =
  ignore
    (compile_and_check "lstm" (Models.lstm_lm ~hidden:32 ~layers:2 ~vocab:50 ())
       (Tvm.Target.cuda ()))

let test_dcgan () =
  ignore
    (compile_and_check "dcgan" (Models.dcgan ~code_dim:8 ~base:4 ())
       (Tvm.Target.cuda ()))

let test_fusion_reduces_kernels () =
  let graph = Models.resnet18 ~input_hw:32 ~width:0.125 ~num_classes:10 () in
  let fused = Tvm.Compiler.build ~spec graph (Tvm.Target.cuda ()) in
  let unfused =
    Tvm.Compiler.build
      ~spec:{ spec with Tvm_spec.Job_spec.fusion = false }
      graph (Tvm.Target.cuda ())
  in
  checkb "fewer kernels with fusion"
    (List.length (Tvm_runtime.Rt_module.kernels fused.Tvm.Compiler.module_)
    < List.length (Tvm_runtime.Rt_module.kernels unfused.Tvm.Compiler.module_))

let test_fusion_faster () =
  let graph = Models.mobilenet ~input_hw:32 ~width:0.25 ~num_classes:10 () in
  let t_fused =
    let _, e = Tvm.Compiler.build_executor ~spec graph (Tvm.Target.cuda ()) in
    Exec.estimated_time_s e
  in
  let t_unfused =
    let _, e =
      Tvm.Compiler.build_executor
        ~spec:{ spec with Tvm_spec.Job_spec.fusion = false }
        graph (Tvm.Target.cuda ())
    in
    Exec.estimated_time_s e
  in
  checkb "fusion speeds up end-to-end" (t_fused < t_unfused)

let test_workloads_table () =
  Alcotest.(check int) "12 resnet convs" 12 (List.length Workloads.resnet_convs);
  Alcotest.(check int) "9 depthwise" 9 (List.length Workloads.mobilenet_depthwise);
  let c7 = Workloads.find "C7" in
  Alcotest.(check int) "C7 oc" 256 c7.Workloads.oc;
  checkb "C7 flops" (Workloads.flops c7 > 1e8)

let test_networks_shapes () =
  let g = Models.resnet18 () in
  let out = G.node g (List.hd g.G.outputs) in
  Alcotest.(check (list int)) "resnet output" [ 1; 1000 ] out.G.shape;
  let d = Models.dqn () in
  let dout = G.node d (List.hd d.G.outputs) in
  Alcotest.(check (list int)) "dqn output" [ 1; 18 ] dout.G.shape;
  let gan = Models.dcgan () in
  let gout = G.node gan (List.hd gan.G.outputs) in
  Alcotest.(check (list int)) "dcgan output" [ 1; 3; 64; 64 ] gout.G.shape

let test_baseline_sanity () =
  (* vendor kernels are roofline-bounded: never faster than ideal *)
  let machine = Vendor.Gpu_m Machine.titan_x in
  let t =
    Vendor.op_time Vendor.Cudnn machine ~op:"conv2d"
      ~in_shapes:[ [ 1; 128; 28; 28 ]; [ 256; 128; 3; 3 ] ]
      ~out_shape:[ 1; 256; 28; 28 ] ~attrs:[] ~dtype:Tvm_tir.Dtype.Float32
  in
  let ideal =
    Vendor.roofline_s machine
      ~flops:(2. *. 256. *. 28. *. 28. *. 128. *. 9.)
      ~bytes:1e6 ~dtype:Tvm_tir.Dtype.Float32
  in
  checkb "cudnn >= roofline" (t >= ideal);
  (* frameworks refuse unsupported models, as in Figs 16/19 *)
  checkb "tflite rejects DCGAN"
    (not (Framework.supports Framework.tflite (Models.dcgan ~code_dim:8 ~base:4 ())))

let test_profile_run () =
  let graph = Models.dqn ~input_hw:40 () in
  let _, exec = Tvm.Compiler.build_executor ~spec graph (Tvm.Target.cuda ()) in
  Exec.set_params exec (Models.random_params graph);
  List.iter (fun (n, v) -> Exec.set_input exec n v) (Models.random_inputs graph);
  let report = Exec.profile_run ~mode:`Reference exec in
  let records = report.Tvm_obs.Profile.rp_records in
  checkb "one record per group" (List.length records > 0);
  (* per-kernel times plus launch overhead must account exactly for the
     executor's end-to-end estimate *)
  let sum =
    List.fold_left
      (fun acc r -> acc +. r.Tvm_obs.Profile.pr_time_s +. r.Tvm_obs.Profile.pr_launch_s)
      0. records
  in
  let est = Exec.estimated_time_s exec in
  checkb
    (Printf.sprintf "profile sums to estimate (%.9f vs %.9f)" sum est)
    (Float.abs (sum -. est) <= 1e-9 +. (1e-3 *. est));
  checkb "report total matches" (Float.abs (report.Tvm_obs.Profile.rp_total_s -. est) <= 1e-9);
  List.iter
    (fun r ->
      checkb "bytes touched positive" (r.Tvm_obs.Profile.pr_bytes > 0.);
      Alcotest.(check int) "first run: 1 call" 1 r.Tvm_obs.Profile.pr_calls)
    records;
  (* invocation counts accumulate across profiled runs *)
  let report2 = Exec.profile_run ~mode:`Reference exec in
  List.iter
    (fun r -> Alcotest.(check int) "second run: 2 calls" 2 r.Tvm_obs.Profile.pr_calls)
    report2.Tvm_obs.Profile.rp_records;
  (* profiling must not corrupt execution: output still matches reference *)
  Exec.run ~mode:`Reference exec;
  let reference = Nd.copy (Exec.get_output exec 0) in
  Exec.run ~mode:`Compiled exec;
  checkb "profiled executor still correct"
    (Nd.equal_approx ~tol:2e-3 reference (Exec.get_output exec 0))

let test_module_source () =
  let graph = Models.dqn ~input_hw:40 () in
  let result = Tvm.Compiler.build ~spec graph (Tvm.Target.cuda ()) in
  let src = Tvm_runtime.Rt_module.source result.Tvm.Compiler.module_ in
  checkb "source contains kernels" (String.length src > 200)

let suite =
  [
    Alcotest.test_case "resnet18 on GPU" `Slow test_resnet_gpu;
    Alcotest.test_case "resnet18 on CPU" `Slow test_resnet_cpu;
    Alcotest.test_case "mobilenet" `Slow test_mobilenet;
    Alcotest.test_case "dqn" `Slow test_dqn;
    Alcotest.test_case "lstm" `Slow test_lstm;
    Alcotest.test_case "dcgan" `Slow test_dcgan;
    Alcotest.test_case "fusion reduces kernels" `Quick test_fusion_reduces_kernels;
    Alcotest.test_case "fusion faster" `Quick test_fusion_faster;
    Alcotest.test_case "workloads table" `Quick test_workloads_table;
    Alcotest.test_case "network shapes" `Quick test_networks_shapes;
    Alcotest.test_case "baseline sanity" `Quick test_baseline_sanity;
    Alcotest.test_case "profile run" `Quick test_profile_run;
    Alcotest.test_case "module source" `Quick test_module_source;
  ]
