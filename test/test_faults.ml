(* Fault-injection and fault-tolerance tests for the measurement path:
   deterministic fault plans, retry/backoff recovery, quarantine,
   graceful degradation on device death, and convergence of the tuner
   under a 20% transient-fault rate.

   The fault-plan seed varies with the FAULT_SEED environment variable;
   `make check-fault` runs this suite at three different seeds. *)

open Tvm_tir
module Pool = Tvm_rpc.Device_pool
module Fault = Tvm_rpc.Fault
module Retry = Tvm_rpc.Retry_policy
module Tuner = Tvm_autotune.Tuner
module Templates = Tvm_autotune.Templates
module Cfg = Tvm_autotune.Cfg_space
module R = Tvm_autotune.Measure_result
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Machine = Tvm_sim.Machine
open Test_helpers

let fault_seed = try int_of_string (Sys.getenv "FAULT_SEED") with _ -> 0

(* Quarantine disabled: the single-device plans below would otherwise
   exhaust their pool mid-test. *)
let no_quarantine = { Retry.default with Retry.quarantine_error_rate = 2.0 }

let conv_template () =
  let d = Tensor.placeholder "ft_d" (List.map Expr.int [ 1; 16; 8; 8 ]) in
  let w = Tensor.placeholder "ft_w" (List.map Expr.int [ 16; 16; 3; 3 ]) in
  let c = Op.conv2d ~name:"ft_conv" ~stride:1 d w in
  Templates.gpu_flat ~name:"ft_tpl" c

(** A lowered kernel to measure directly, outside the tuning loop. *)
let some_stmt =
  lazy
    (let tpl = conv_template () in
     let rng = Random.State.make [| 21 |] in
     let rec find n =
       if n = 0 then Alcotest.fail "no valid config for fault tests"
       else
         let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
         match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
         | Some s -> s
         | None -> find (n - 1)
     in
     find 200)

let metric name = Option.value ~default:0. (Tvm_obs.Metrics.get name)

(* ------------------------------------------------------------------ *)
(* Deterministic fault plans                                            *)
(* ------------------------------------------------------------------ *)

let test_plan_deterministic () =
  let stmt = Lazy.force some_stmt in
  let run () =
    let plan = Fault.transient ~seed:(fault_seed + 3) ~rate:0.4 () in
    let pool =
      Pool.create ~fault_plan:plan ~retry:no_quarantine
        [ Pool.Gpu_dev Machine.titan_x ]
    in
    List.init 30 (fun i ->
        let r = Pool.measure ~key:i pool ~kind_pred:Pool.is_gpu stmt in
        (R.status_name r.R.status, r.R.time_s, r.R.attempts))
  in
  let a = run () and b = run () in
  checkb "identical fault plans replay identically" (a = b);
  let attempts = List.fold_left (fun acc (_, _, n) -> acc + n) 0 a in
  checkb "plan actually injected faults" (attempts > 30)

let test_draw_is_pure () =
  let plan = Fault.transient ~seed:(fault_seed + 11) ~rate:0.5 () in
  let seq () = List.init 100 (fun i -> Fault.draw plan ~dev_id:0 ~attempt:i) in
  checkb "draw is a pure function" (seq () = seq ());
  let other = Fault.transient ~seed:(fault_seed + 12) ~rate:0.5 () in
  checkb "different seeds differ"
    (seq () <> List.init 100 (fun i -> Fault.draw other ~dev_id:0 ~attempt:i))

(* ------------------------------------------------------------------ *)
(* Retries recover from transient faults                                *)
(* ------------------------------------------------------------------ *)

let test_retries_recover () =
  let stmt = Lazy.force some_stmt in
  let plan = Fault.transient ~seed:(fault_seed + 40) ~rate:0.3 () in
  let retry = { no_quarantine with Retry.max_retries = 8 } in
  let pool =
    Pool.create ~fault_plan:plan ~retry [ Pool.Gpu_dev Machine.titan_x ]
  in
  let retries_before = metric "pool.retries" in
  let results =
    List.init 30 (fun i -> Pool.measure ~key:i pool ~kind_pred:Pool.is_gpu stmt)
  in
  checkb "every job eventually succeeds" (List.for_all R.is_ok results);
  checkb "some jobs needed retries" (List.exists (fun r -> r.R.attempts > 1) results);
  checkb "pool.retries counted" (metric "pool.retries" > retries_before);
  (* backoff advances the simulated clock past the pure work time *)
  checkb "makespan positive" (Pool.makespan pool > 0.)

(* ------------------------------------------------------------------ *)
(* Quarantine                                                           *)
(* ------------------------------------------------------------------ *)

let test_quarantine_stops_jobs () =
  let stmt = Lazy.force some_stmt in
  let plan =
    Fault.with_device Fault.none 1
      { Fault.no_fault_rates with Fault.crash_rate = 1.0 }
  in
  let retry =
    { Retry.default with
      Retry.max_retries = 3; quarantine_error_rate = 0.5; quarantine_min_jobs = 8 }
  in
  let pool =
    Pool.create ~fault_plan:plan ~retry
      [ Pool.Gpu_dev Machine.titan_x; Pool.Gpu_dev Machine.titan_x ]
  in
  let quarantined_before = metric "pool.quarantined" in
  let run n = List.init n (fun i -> Pool.measure ~key:i pool ~kind_pred:Pool.is_gpu stmt) in
  let first = run 20 in
  let h1 () = List.nth (Pool.health pool) 1 in
  checkb "always-crashing device quarantined" (h1 ()).Pool.h_quarantined;
  checkb "quarantined at the threshold" ((h1 ()).Pool.h_attempts = 8);
  checkb "pool.quarantined counted" (metric "pool.quarantined" > quarantined_before);
  let attempts_frozen = (h1 ()).Pool.h_attempts in
  let second = run 20 in
  Alcotest.(check int) "no further jobs after quarantine" attempts_frozen
    (h1 ()).Pool.h_attempts;
  checkb "jobs keep succeeding on the healthy device"
    (List.for_all R.is_ok (first @ second) |> fun ok ->
     ok || List.length (List.filter R.is_ok (first @ second)) >= 30)

let test_exhausted_pool_raises () =
  let stmt = Lazy.force some_stmt in
  let plan =
    Fault.plan
      ~default:{ Fault.no_fault_rates with Fault.death_rate = 1.0 }
      ()
  in
  let pool =
    Pool.create ~fault_plan:plan [ Pool.Gpu_dev Machine.titan_x; Pool.Gpu_dev Machine.titan_x ]
  in
  (* Both devices die servicing the first job; it fails over and then
     reports the loss. The next job finds nothing left. *)
  let r = Pool.measure pool ~kind_pred:Pool.is_gpu stmt in
  checkb "job on a dying fleet fails" (not (R.is_ok r));
  try
    ignore (Pool.measure pool ~kind_pred:Pool.is_gpu stmt);
    Alcotest.fail "expected No_healthy_device"
  with Pool.No_healthy_device _ -> ()

(* ------------------------------------------------------------------ *)
(* Device death: tuning survives on the rest of the pool                *)
(* ------------------------------------------------------------------ *)

let test_tuning_survives_device_death () =
  let tpl = conv_template () in
  let plan =
    Fault.with_device Fault.none 0
      { Fault.no_fault_rates with Fault.death_rate = 1.0 }
  in
  let pool =
    Pool.create ~fault_plan:plan
      [ Pool.Gpu_dev Machine.titan_x; Pool.Gpu_dev Machine.titan_x ]
  in
  let deaths_before = metric "pool.device_deaths" in
  let res =
    Tuner.tune ~method_:Tuner.Ml_model
      ~measure:(Pool.measure_fn pool ~kind_pred:Pool.is_gpu)
      ~n_trials:32 tpl
  in
  checkb "tuning completed with a best config" (res.Tuner.best_time > 0.);
  Alcotest.(check int) "full budget spent" 32 (List.length res.Tuner.history);
  let health = Pool.health pool in
  checkb "device 0 died" (List.nth health 0).Pool.h_dead;
  checkb "device 0 ran nothing" ((List.nth health 0).Pool.h_jobs_run = 0);
  checkb "survivor did the work" ((List.nth health 1).Pool.h_jobs_run > 0);
  checkb "death counted" (metric "pool.device_deaths" > deaths_before)

(* ------------------------------------------------------------------ *)
(* Convergence under 20% transient faults + statuses in the Db          *)
(* ------------------------------------------------------------------ *)

let test_faulty_tuning_converges () =
  let budget = 64 in
  let tune ~pool ~db =
    Tuner.tune ?db
      ~spec:(Tvm_spec.Job_spec.make ~seed:13 ())
      ~method_:Tuner.Ml_model
      ~measure:(Pool.measure_fn pool ~kind_pred:Pool.is_gpu)
      ~n_trials:budget (conv_template ())
  in
  let clean =
    tune ~db:None ~pool:(Pool.create [ Pool.Gpu_dev Machine.titan_x ])
  in
  (* Flaky fleet: two boards at a 20% transient-fault rate plus one
     pathological board that crashes almost every run and must end up
     quarantined. *)
  let plan =
    Fault.with_device
      (Fault.transient ~seed:(fault_seed + 77) ~rate:0.2 ())
      2
      { Fault.no_fault_rates with Fault.crash_rate = 0.95 }
  in
  let pool =
    Pool.create ~fault_plan:plan
      [ Pool.Gpu_dev Machine.titan_x; Pool.Gpu_dev Machine.titan_x;
        Pool.Gpu_dev Machine.titan_x ]
  in
  let retries_before = metric "pool.retries" in
  let quarantined_before = metric "pool.quarantined" in
  let db = Tuner.Db.create () in
  let faulty = tune ~db:(Some db) ~pool in
  checkb
    (Printf.sprintf "faulty best %.4g ms within 2x of clean best %.4g ms"
       (1e3 *. faulty.Tuner.best_time) (1e3 *. clean.Tuner.best_time))
    (faulty.Tuner.best_time <= 2. *. clean.Tuner.best_time);
  Alcotest.(check int) "full budget spent" budget (List.length faulty.Tuner.history);
  checkb "pool.retries nonzero" (metric "pool.retries" > retries_before);
  checkb "pool.quarantined nonzero" (metric "pool.quarantined" > quarantined_before);
  (* Db tallies must agree with the recorded history, category by
     category. *)
  Alcotest.(check int) "db holds every trial" budget (Tuner.Db.size db);
  let history_count pred = List.length (List.filter pred faulty.Tuner.history) in
  List.iter
    (fun name ->
      Alcotest.(check int) ("db tally: " ^ name)
        (history_count (fun t -> R.status_name t.Tuner.result.R.status = name))
        (Tuner.Db.status_count db name))
    [ "ok"; "timeout"; "crash"; "invalid_config"; "pool_error" ];
  let tally_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Tuner.Db.status_counts db)
  in
  Alcotest.(check int) "tallies sum to the budget" budget tally_total

let suite =
  [
    Alcotest.test_case "fault plans replay deterministically" `Quick test_plan_deterministic;
    Alcotest.test_case "fault draw is pure" `Quick test_draw_is_pure;
    Alcotest.test_case "retries recover transient faults" `Quick test_retries_recover;
    Alcotest.test_case "quarantined device gets no jobs" `Quick test_quarantine_stops_jobs;
    Alcotest.test_case "exhausted pool raises" `Quick test_exhausted_pool_raises;
    Alcotest.test_case "tuning survives device death" `Quick test_tuning_survives_device_death;
    Alcotest.test_case "20% faults: converges, db tallies" `Quick test_faulty_tuning_converges;
  ]
