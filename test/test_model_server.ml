(* Serving-executor tests: deterministic traffic, dynamic batching,
   cross-request slab accounting, heterogeneous placement, and the
   byte-identical-at-any-lane-count contract. *)

module Traffic = Tvm_serve.Traffic
module Srv = Tvm_serve.Model_server
module Models = Tvm_models.Models
open Test_helpers

let () = Tvm_graph.Std_ops.register_all ()

let tenants ~models ~n ~rate =
  List.init n (fun i ->
      Traffic.tenant ~rate_hz:rate ~slo_s:0.25
        ~model:(List.nth models (i mod List.length models))
        (Printf.sprintf "t%d" i))

let test_traffic_deterministic () =
  let ts = tenants ~models:[ "a"; "b" ] ~n:3 ~rate:100. in
  let r1 = Traffic.generate ~seed:7 ~horizon_s:0.5 ts in
  let r2 = Traffic.generate ~seed:7 ~horizon_s:0.5 ts in
  checkb "same seed, same trace" (r1 = r2);
  let r3 = Traffic.generate ~seed:8 ~horizon_s:0.5 ts in
  checkb "different seed, different trace" (r1 <> r3);
  (* Arrivals are submit-ordered with sequential ids inside the horizon. *)
  List.iteri
    (fun i (r : Traffic.request) ->
      Alcotest.(check int) "sequential id" i r.Traffic.rq_id;
      checkb "inside horizon" (r.Traffic.rq_submit_s >= 0. && r.Traffic.rq_submit_s < 0.5))
    r1;
  let sorted =
    List.sort (fun (a : Traffic.request) b -> compare a.Traffic.rq_submit_s b.Traffic.rq_submit_s) r1
  in
  checkb "submit ordered" (List.map (fun (r : Traffic.request) -> r.Traffic.rq_submit_s) r1
                           = List.map (fun (r : Traffic.request) -> r.Traffic.rq_submit_s) sorted)

let test_traffic_roundtrip () =
  let ts = tenants ~models:[ "resnet18" ] ~n:2 ~rate:200. in
  let reqs = Traffic.generate ~seed:3 ~horizon_s:0.2 ts in
  checkb "non-empty" (reqs <> []);
  let reqs' = Traffic.of_lines (Traffic.to_lines reqs) in
  checkb "exact text round trip" (reqs = reqs')

(* Two conv models keep the serving tests fast while still exercising
   cross-model arena sharing, per-model queues, and activation-heavy
   plans where slab reuse matters. *)
let small_suite () =
  List.filter
    (fun (n, _) -> n = "resnet18" || n = "mobilenet")
    (Models.serving_suite ())

let load ?(max_batch = 8) ?(hetero = true) ?(lanes = 1) () =
  Srv.load ~lanes
    (Srv.config ~max_batch ~max_delay_s:2e-3 ~max_inflight:8 ~hetero ())
    (small_suite ())

let saturating_trace () =
  Traffic.generate ~seed:1 ~horizon_s:0.05
    (tenants ~models:[ "resnet18"; "mobilenet" ] ~n:8 ~rate:2500.)

let test_all_requests_complete () =
  let server = load () in
  let reqs = saturating_trace () in
  let o = Srv.run server reqs in
  Alcotest.(check int) "every request completes once" (List.length reqs)
    (List.length o.Srv.oc_completions);
  let ids = List.sort compare (List.map (fun c -> c.Srv.rc_id) o.Srv.oc_completions) in
  checkb "ids are exactly the trace's"
    (ids = List.map (fun (r : Traffic.request) -> r.Traffic.rq_id) reqs);
  List.iter
    (fun c ->
      checkb "causal" (c.Srv.rc_start_s >= c.Srv.rc_submit_s -. 1e-12);
      checkb "positive service" (c.Srv.rc_finish_s > c.Srv.rc_start_s);
      checkb "latency consistent"
        (Float.abs (c.Srv.rc_latency_s -. (c.Srv.rc_finish_s -. c.Srv.rc_submit_s)) < 1e-9);
      checkb "batch bounded" (c.Srv.rc_batch_size >= 1 && c.Srv.rc_batch_size <= 8))
    o.Srv.oc_completions;
  (* Batches are model-homogeneous: a coalesced batch serves one model. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt tbl c.Srv.rc_batch with
      | None -> Hashtbl.add tbl c.Srv.rc_batch c.Srv.rc_model
      | Some m -> Alcotest.(check string) "homogeneous batch" m c.Srv.rc_model)
    o.Srv.oc_completions

let test_batching_speedup () =
  let reqs = saturating_trace () in
  let batched = Srv.run (load ~max_batch:8 ()) reqs in
  let unbatched = Srv.run (load ~max_batch:1 ()) reqs in
  checkb
    (Printf.sprintf "batched %.0f rps >= 2x unbatched %.0f rps"
       batched.Srv.oc_throughput_rps unbatched.Srv.oc_throughput_rps)
    (batched.Srv.oc_throughput_rps >= 2. *. unbatched.Srv.oc_throughput_rps);
  checkb "coalescing actually happened" (batched.Srv.oc_mean_batch > 2.)

let test_slab_saving () =
  let o = Srv.run (load ()) (saturating_trace ()) in
  checkb
    (Printf.sprintf "slab %.0f vs naive %.0f: saving %.2f >= 0.3"
       o.Srv.oc_slab_bytes o.Srv.oc_naive_bytes o.Srv.oc_slab_saving)
    (o.Srv.oc_slab_saving >= 0.3);
  checkb "arena reused slabs across requests" (o.Srv.oc_slab_reuses > 0);
  checkb "slab below naive" (o.Srv.oc_slab_bytes < o.Srv.oc_naive_bytes)

let test_hetero_placement () =
  let hetero = load ~hetero:true () in
  let gpu_only = load ~hetero:false () in
  List.iter
    (fun (m : Srv.model) ->
      let placed d = List.assoc d m.Srv.mv_placement in
      let total = List.fold_left (fun a (_, n) -> a + n) 0 m.Srv.mv_placement in
      Alcotest.(check int) "all groups on gpu" total (placed "gpu"))
    (Srv.models gpu_only);
  (* With dispatch on, at least one model must actually split devices. *)
  checkb "some model splits across devices"
    (List.exists
       (fun (m : Srv.model) ->
         List.length (List.filter (fun (_, n) -> n > 0) m.Srv.mv_placement) > 1)
       (Srv.models hetero));
  (* Placement can only lower the modeled service time. *)
  List.iter2
    (fun (h : Srv.model) (g : Srv.model) ->
      checkb (h.Srv.mv_name ^ ": hetero estimate not worse")
        (h.Srv.mv_time1_s <= g.Srv.mv_time1_s +. 1e-12))
    (Srv.models hetero) (Srv.models gpu_only)

let test_lane_identical () =
  let reqs = saturating_trace () in
  let o1 = Srv.run (load ~lanes:1 ()) reqs in
  let o4 = Srv.run (load ~lanes:4 ()) reqs in
  checkb "results byte-identical at 1 vs 4 lanes"
    (Srv.results_lines o1 = Srv.results_lines o4)

let suite =
  [
    Alcotest.test_case "traffic: deterministic, ordered, sequential ids" `Quick
      test_traffic_deterministic;
    Alcotest.test_case "traffic: trace file round trip" `Quick
      test_traffic_roundtrip;
    Alcotest.test_case "serve: every request completes exactly once" `Quick
      test_all_requests_complete;
    Alcotest.test_case "serve: batched throughput >= 2x unbatched" `Quick
      test_batching_speedup;
    Alcotest.test_case "serve: cross-request slab saving >= 30%" `Quick
      test_slab_saving;
    Alcotest.test_case "serve: heterogeneous placement splits devices" `Quick
      test_hetero_placement;
    Alcotest.test_case "serve: byte-identical across lanes" `Slow
      test_lane_identical;
  ]
