(* Tests for the static TIR sanitizer (Validate): seeded-fault negative
   tests, a zero-error sweep over every Table-2 workload x template x
   sampled config, compiler integration under both fusion modes, the
   interval-arithmetic property tests its soundness rests on, and
   regression tests for the bug crop fixed alongside it.

   The sweep's sampling seed varies with VALIDATE_SEED (see
   `make check-validate`). *)

open Tvm_tir
module Templates = Tvm_autotune.Templates
module Tuner = Tvm_autotune.Tuner
module Cfg_space = Tvm_autotune.Cfg_space
module Workloads = Tvm_models.Workloads
module G = Tvm_graph.Graph_ir
module Attrs = Tvm_graph.Attrs
module Vdla = Tvm_vdla.Vdla_schedule

let checkb name = Alcotest.(check bool) name true
let validate_seed = try int_of_string (Sys.getenv "VALIDATE_SEED") with _ -> 0

let has pred vs = List.exists pred vs
let errors s = Validate.errors (Validate.check s)
let show vs = String.concat "; " (List.map Validate.to_string vs)

let assert_clean name s =
  match errors s with
  | [] -> ()
  | es -> Alcotest.failf "%s: unexpected errors: %s" name (show es)

(* ------------------------------------------------------------------ *)
(* Seeded faults: each defect class has a dedicated negative test      *)
(* ------------------------------------------------------------------ *)

let local_buf ?(dtype = Dtype.Float32) name shape =
  Expr.Buffer.create ~scope:Expr.Local ~dtype name (List.map Expr.int shape)

let test_oob_store () =
  let b = local_buf "vo_b" [ 8 ] in
  let i = Expr.Var.fresh "i" in
  let s =
    Stmt.Allocate
      ( b,
        Stmt.for_ i (Expr.int 0) (Expr.int 8)
          (Stmt.Store (b, [ Expr.(var i + int 3) ], Expr.float 0.)) )
  in
  checkb "oob store flagged"
    (has (fun v -> match v.Validate.kind with
       | Validate.Out_of_bounds (b', 0, _, 8) -> Expr.Buffer.equal b b'
       | _ -> false)
       (errors s))

let test_oob_load () =
  let b = local_buf "vl_b" [ 4 ] and c = local_buf "vl_c" [ 16 ] in
  let i = Expr.Var.fresh "i" in
  let s =
    Stmt.Allocate
      ( b,
        Stmt.Allocate
          ( c,
            Stmt.for_ i (Expr.int 0) (Expr.int 16)
              (Stmt.Store (c, [ Expr.var i ], Expr.load b [ Expr.var i ])) ) )
  in
  checkb "oob load flagged"
    (has (fun v -> match v.Validate.kind with
       | Validate.Out_of_bounds (b', 0, _, 4) -> Expr.Buffer.equal b b'
       | _ -> false)
       (errors s));
  (* the guarded version stays in bounds and must be clean *)
  let guarded =
    Stmt.Allocate
      ( b,
        Stmt.Allocate
          ( c,
            Stmt.for_ i (Expr.int 0) (Expr.int 16)
              (Stmt.If_then_else
                 ( Expr.(var i < int 4),
                   Stmt.Store (c, [ Expr.var i ], Expr.load b [ Expr.var i ]),
                   None )) ) )
  in
  assert_clean "guarded load" guarded

let test_unbound_var () =
  let b = local_buf "vu_b" [ 8 ] in
  let s =
    Stmt.Allocate
      (b, Stmt.Store (b, [ Expr.Var (Expr.Var.fresh "phantom") ], Expr.float 0.))
  in
  checkb "unbound var flagged"
    (has (fun v -> match v.Validate.kind with
       | Validate.Unbound_var v' -> v'.Expr.vname = "phantom"
       | _ -> false)
       (errors s))

let test_buffer_scoping () =
  let b = local_buf "vs_b" [ 4 ] in
  let store = Stmt.Store (b, [ Expr.int 0 ], Expr.float 1.) in
  (* used after its Allocate closes *)
  let s = Stmt.Seq [ Stmt.Allocate (b, store); store ] in
  checkb "out of scope flagged"
    (has (fun v -> v.Validate.kind = Validate.Out_of_scope b) (errors s));
  (* non-Global buffer never allocated at all *)
  checkb "unallocated flagged"
    (has (fun v -> v.Validate.kind = Validate.Unallocated b) (errors store));
  (* a Global buffer with no Allocate is an external parameter: fine *)
  let p = Expr.Buffer.create "vs_param" [ Expr.int 4 ] in
  assert_clean "global param" (Stmt.Store (p, [ Expr.int 0 ], Expr.float 1.))

let test_dtype_mismatch () =
  let ib = local_buf ~dtype:Dtype.Int32 "vd_i" [ 4 ] in
  let s = Stmt.Allocate (ib, Stmt.Store (ib, [ Expr.int 0 ], Expr.float 1.5)) in
  checkb "float into int buffer is an error"
    (has (fun v ->
       v.Validate.severity = Validate.Error
       && match v.Validate.kind with Validate.Dtype_mismatch _ -> true | _ -> false)
       (errors s));
  (* same class, narrower width: conservative warning only *)
  let hb = local_buf ~dtype:Dtype.Float16 "vd_h" [ 4 ] in
  let w = Stmt.Allocate (hb, Stmt.Store (hb, [ Expr.int 0 ], Expr.float 1.5)) in
  assert_clean "f32 into f16 not an error" w;
  checkb "f32 into f16 warns"
    (has (fun v -> match v.Validate.kind with Validate.Dtype_mismatch _ -> true | _ -> false)
       (Validate.warnings (Validate.check w)));
  (* int literal into a float accumulator (reduction init) is fine *)
  let fb = local_buf "vd_f" [ 4 ] in
  assert_clean "int zero into f32"
    (Stmt.Allocate (fb, Stmt.Store (fb, [ Expr.int 0 ], Expr.int 0)))

let test_unbalanced_tokens () =
  let push = Stmt.Push_dep (Stmt.Ld, Stmt.Ex) in
  let pop = Stmt.Pop_dep (Stmt.Ld, Stmt.Ex) in
  checkb "lone push flagged"
    (has (fun v -> match v.Validate.kind with
       | Validate.Unbalanced_tokens (Stmt.Ld, Stmt.Ex, 1) -> true
       | _ -> false)
       (errors (Stmt.Seq [ push ])));
  checkb "pop before push flagged"
    (has (fun v -> match v.Validate.kind with
       | Validate.Token_underflow (Stmt.Ld, Stmt.Ex) -> true
       | _ -> false)
       (errors (Stmt.Seq [ pop; push ])));
  (* the DAE prime/steady/drain shape vthread lowering emits *)
  let i = Expr.Var.fresh "i" in
  let balanced =
    Stmt.Seq
      [ push;
        Stmt.for_ i (Expr.int 0) (Expr.int 8) (Stmt.Seq [ pop; push ]);
        pop ]
  in
  assert_clean "prime/drain loop" balanced

let vthread_store ~alloc_inside ~idx ~guard =
  let b = Expr.Buffer.create ~scope:Expr.Shared "vr_b" [ Expr.int 4 ] in
  let t = Expr.Var.fresh "tv" in
  let store = Stmt.Store (b, [ idx t ], Expr.float 1.) in
  let store = match guard with None -> store | Some g -> Stmt.If_then_else (g t, store, None) in
  let body = if alloc_inside then Stmt.Allocate (b, store) else store in
  let loop = Stmt.for_ ~kind:Stmt.Vthread t (Expr.int 0) (Expr.int 2) body in
  if alloc_inside then loop else Stmt.Allocate (b, loop)

let test_write_race () =
  let invariant = vthread_store ~alloc_inside:false ~idx:(fun _ -> Expr.int 0) ~guard:None in
  checkb "thread-invariant store races"
    (has (fun v -> match v.Validate.kind with Validate.Write_race _ -> true | _ -> false)
       (errors invariant));
  assert_clean "thread-dependent index"
    (vthread_store ~alloc_inside:false ~idx:(fun t -> Expr.var t) ~guard:None);
  assert_clean "per-thread private buffer"
    (vthread_store ~alloc_inside:true ~idx:(fun _ -> Expr.int 0) ~guard:None);
  assert_clean "guard pins thread id"
    (vthread_store ~alloc_inside:false ~idx:(fun _ -> Expr.int 0)
       ~guard:(Some (fun t -> Expr.(var t = int 0))))

let test_non_affine_warns () =
  let b = local_buf "vn_b" [ 8 ] in
  let tbl = Expr.Buffer.create ~dtype:Dtype.Int32 "vn_tbl" [ Expr.int 8 ] in
  let s =
    Stmt.Allocate
      (b, Stmt.Store (b, [ Expr.load tbl [ Expr.int 0 ] ], Expr.float 0.))
  in
  let vs = Validate.check s in
  checkb "indirect index is not an error" (Validate.errors vs = []);
  checkb "indirect index warns"
    (has (fun v -> match v.Validate.kind with Validate.Non_affine _ -> true | _ -> false)
       (Validate.warnings vs))

(* ------------------------------------------------------------------ *)
(* Zero errors on every real lowered program                           *)
(* ------------------------------------------------------------------ *)

let test_workload_sweep () =
  let rs = Random.State.make [| validate_seed; 91 |] in
  let checked = ref 0 in
  List.iter
    (fun (w : Workloads.conv) ->
      let out = Tvm_experiments.Fig_e2e.conv_tensor w in
      List.iter
        (fun (tpl_name, mk) ->
          let tpl : Tuner.template = mk ~name:w.Workloads.name out in
          for _ = 1 to 3 do
            let cfg = Cfg_space.random_config tpl.Tuner.tpl_space rs in
            match tpl.Tuner.tpl_instantiate cfg with
            | exception _ -> () (* invalid configs are the tuner's problem *)
            | stmt ->
                incr checked;
                (match errors stmt with
                 | [] -> ()
                 | es ->
                     Alcotest.failf "%s/%s %s: %s" w.Workloads.name tpl_name
                       (Cfg_space.to_string cfg) (show es))
          done)
        [ ("gpu_flat", Templates.gpu_flat); ("cpu_flat", Templates.cpu_flat) ])
    Workloads.all;
  checkb "sweep exercised real programs" (!checked > 40)

let test_gpu_matmul_clean () =
  let a = Tvm_te.Tensor.placeholder "vm_a" [ Expr.int 256; Expr.int 256 ] in
  let b = Tvm_te.Tensor.placeholder "vm_b" [ Expr.int 256; Expr.int 256 ] in
  let c = Tvm_te.Operators.dense ~name:"vm_c" a b in
  let tpl = Templates.gpu_matmul ~name:"vm" c in
  let rs = Random.State.make [| validate_seed; 17 |] in
  let checked = ref 0 in
  for _ = 1 to 8 do
    let cfg = Cfg_space.random_config tpl.Tuner.tpl_space rs in
    match tpl.Tuner.tpl_instantiate cfg with
    | exception _ -> ()
    | stmt ->
        incr checked;
        assert_clean "gpu_matmul" stmt
  done;
  checkb "matmul configs checked" (!checked > 0)

let test_vdla_clean () =
  List.iter
    (fun vt ->
      let wl = Vdla.gemm_workload ~m:32 ~n:32 ~k:64 () in
      let s = Vdla.schedule ~vthreads:vt wl in
      assert_clean "vdla raw" s;
      assert_clean "vdla lowered" (Tvm_lower.Vthread_lower.run s))
    [ 1; 2; 4 ]

(* conv graph for one Table-2 workload *)
let workload_graph (w : Workloads.conv) =
  let b = G.builder () in
  let data = G.input b "data" [ 1; w.Workloads.ic; w.Workloads.hw; w.Workloads.hw ] in
  let oc = if w.Workloads.depthwise then w.Workloads.ic else w.Workloads.oc in
  let ic_w = if w.Workloads.depthwise then 1 else w.Workloads.ic in
  let wt = G.param b "w" [ oc; ic_w; w.Workloads.kernel; w.Workloads.kernel ] in
  let op_name = if w.Workloads.depthwise then "depthwise_conv2d" else "conv2d" in
  let conv =
    G.op b op_name ~name:w.Workloads.name
      ~attrs:[ ("stride", Attrs.Int w.Workloads.stride); ("padding", Attrs.Str "same") ]
      [ data; wt ]
  in
  let relu = G.op b "relu" ~name:(w.Workloads.name ^ "_relu") [ conv ] in
  G.finalize b [ relu ]

let test_compiler_validates_workloads () =
  (* every Table-2 workload through the full compiler, both fusion
     modes, with validation fatal: Validation_failed would fail the test *)
  Tvm.Compiler.clear_cache ();
  let spec fusion =
    Tvm_spec.Job_spec.make ~trials:0 ~fusion ~validate:true ()
  in
  List.iter
    (fun (w : Workloads.conv) ->
      let graph = workload_graph w in
      List.iter
        (fun fusion ->
          Tvm.Compiler.clear_cache ();
          let result =
            Tvm.Compiler.build ~spec:(spec fusion) graph (Tvm.Target.cuda ())
          in
          checkb "kernels produced"
            (Tvm_runtime.Rt_module.kernels result.Tvm.Compiler.module_ <> []))
        [ true; false ])
    Workloads.all

let test_compiler_validates_networks () =
  Tvm.Compiler.clear_cache ();
  let spec fusion =
    Tvm_spec.Job_spec.make ~trials:0 ~fusion ~validate:true ()
  in
  List.iter
    (fun fusion ->
      List.iter
        (fun target ->
          Tvm.Compiler.clear_cache ();
          ignore
            (Tvm.Compiler.build ~spec:(spec fusion) (Tvm_models.Models.dqn ())
               target))
        [ Tvm.Target.cuda (); Tvm.Target.llvm () ])
    [ true; false ]

let test_validation_failed_raises () =
  (* direct check that the compiler option is wired: a seeded-fault
     program run through Validate must also fail a build if a template
     ever emitted it; simulate by validating directly *)
  let b = local_buf "vf_b" [ 2 ] in
  let s =
    Stmt.Allocate (b, Stmt.Store (b, [ Expr.int 5 ], Expr.float 0.))
  in
  checkb "direct seeded fault caught" (errors s <> [])

(* ------------------------------------------------------------------ *)
(* Interval soundness properties                                       *)
(* ------------------------------------------------------------------ *)

let interval_gen =
  QCheck.Gen.(
    let* lo = int_range (-8) 8 in
    let* len = int_range 0 6 in
    return (Interval.make lo (lo + len)))

let interval_arb =
  QCheck.make ~print:Interval.to_string interval_gen

let elems i =
  List.init (Interval.length i) (fun k -> i.Interval.lo + k)

let sound_binop name f_interval f_int =
  QCheck.Test.make ~name ~count:200
    QCheck.(pair interval_arb interval_arb)
    (fun (ia, ib) ->
      let r = f_interval ia ib in
      List.for_all
        (fun a -> List.for_all (fun b -> Interval.contains r (f_int a b)) (elems ib))
        (elems ia))

let sound_divlike name f_interval f_int =
  (* divisor must be a positive constant *)
  QCheck.Test.make ~name ~count:200
    QCheck.(pair interval_arb (int_range 1 7))
    (fun (ia, d) ->
      let r = f_interval ia (Interval.point d) in
      List.for_all (fun a -> Interval.contains r (f_int a d)) (elems ia))

let fdiv a b = Expr.binop_eval_int Expr.Div a b
let fmod a b = Expr.binop_eval_int Expr.FloorMod a b

let interval_properties =
  [
    sound_binop "interval add sound" Interval.add ( + );
    sound_binop "interval sub sound" Interval.sub ( - );
    sound_binop "interval mul sound" Interval.mul ( * );
    sound_binop "interval min sound" Interval.min_ min;
    sound_binop "interval max sound" Interval.max_ max;
    sound_divlike "interval div sound" Interval.div fdiv;
    sound_divlike "interval modulo sound" Interval.modulo fmod;
  ]

(* ------------------------------------------------------------------ *)
(* Satellite bugfix regressions                                        *)
(* ------------------------------------------------------------------ *)

let test_unit_thread_loop_survives () =
  (* pre-fix, both the smart constructor and Simplify collapsed ANY
     extent-1 loop into a Let_stmt, erasing thread bindings *)
  let v = Expr.Var.fresh "tx" in
  let body = Stmt.Evaluate (Expr.var v) in
  let bound =
    Stmt.for_ ~kind:(Stmt.Thread_binding "threadIdx.x") v (Expr.int 0) (Expr.int 1) body
  in
  (match bound with
   | Stmt.For l -> checkb "kind kept" (l.Stmt.kind = Stmt.Thread_binding "threadIdx.x")
   | _ -> Alcotest.fail "unit thread-bound loop was collapsed by Stmt.for_");
  (match Simplify.stmt bound with
   | Stmt.For l -> checkb "kind kept by simplify" (l.Stmt.kind = Stmt.Thread_binding "threadIdx.x")
   | _ -> Alcotest.fail "unit thread-bound loop was collapsed by Simplify");
  (* serial unit loops must still fold away *)
  (match Stmt.for_ v (Expr.int 0) (Expr.int 1) body with
   | Stmt.Let_stmt _ -> ()
   | _ -> Alcotest.fail "serial unit loop no longer collapses")

let test_sa_rejects_nan_predictions () =
  let space =
    Cfg_space.space [ Cfg_space.knob "a" [ 1; 2; 4; 8 ]; Cfg_space.knob "b" [ 1; 2; 4 ] ]
  in
  let rng = Random.State.make [| 5 |] in
  let visited = Hashtbl.create 16 in
  let state = Tvm_autotune.Explorers.sa_init space rng ~n_chains:4 in
  (* an untrained / degenerate model: NaN everywhere. Pre-fix these
     entered the candidate pool (and NaN poisons the sort). *)
  let batch =
    Tvm_autotune.Explorers.simulated_annealing space rng state
      ~predict_for_chain:(fun _ _ -> Float.nan) ~visited ~n_steps:20 ~temp:1.
      ~batch:8
  in
  checkb "no candidates from an all-NaN predictor" (batch = []);
  (* mixed predictor: only finitely-scored configs may surface *)
  let predict cfg = if Cfg_space.get cfg "a" >= 4 then Float.nan else 1. in
  let state = Tvm_autotune.Explorers.sa_init space rng ~n_chains:4 in
  let batch =
    Tvm_autotune.Explorers.simulated_annealing space rng state
      ~predict_for_chain:(fun _ cfg -> predict cfg) ~visited ~n_steps:20
      ~temp:1. ~batch:8
  in
  checkb "batch nonempty" (batch <> []);
  checkb "every returned config has a finite prediction"
    (List.for_all (fun (cfg, _, score) ->
         Float.is_finite (predict cfg) && Float.is_finite score)
       batch)

let test_subst_map_expr_scales () =
  (* pre-fix, subst_map_expr rebuilt the binding list per node:
     O(nodes x bindings). 10k bindings over a 10k-node expression took
     tens of seconds; the hoisted table takes milliseconds. *)
  let n = 10_000 in
  let vars = Array.init n (fun i -> Expr.Var.fresh (Printf.sprintf "x%d" i)) in
  let e =
    Array.fold_left (fun acc v -> Expr.Binop (Expr.Add, acc, Expr.Var v)) (Expr.int 0) vars
  in
  let bindings = Array.to_list (Array.map (fun v -> (v, Expr.IntImm 1)) vars) in
  let t0 = Sys.time () in
  let e' = Visit.subst_map_expr bindings e in
  let dt = Sys.time () -. t0 in
  checkb "all vars substituted" (Visit.free_vars e' = []);
  if dt > 2.0 then
    Alcotest.failf "subst_map_expr took %.1fs for %d bindings (quadratic?)" dt n;
  (* first binding of a duplicated var must win, as with assoc lists *)
  let v = Expr.Var.fresh "dup" in
  let r = Visit.subst_map_expr [ (v, Expr.int 1); (v, Expr.int 2) ] (Expr.var v) in
  checkb "first binding wins" (Expr.equal r (Expr.int 1))

let suite =
  [
    Alcotest.test_case "oob store flagged" `Quick test_oob_store;
    Alcotest.test_case "oob load flagged, guarded clean" `Quick test_oob_load;
    Alcotest.test_case "unbound var flagged" `Quick test_unbound_var;
    Alcotest.test_case "buffer scoping" `Quick test_buffer_scoping;
    Alcotest.test_case "dtype mismatches" `Quick test_dtype_mismatch;
    Alcotest.test_case "token balance" `Quick test_unbalanced_tokens;
    Alcotest.test_case "cross-vthread write race" `Quick test_write_race;
    Alcotest.test_case "non-affine index warns" `Quick test_non_affine_warns;
    Alcotest.test_case "all workloads x templates clean" `Quick test_workload_sweep;
    Alcotest.test_case "gpu_matmul clean" `Quick test_gpu_matmul_clean;
    Alcotest.test_case "vdla schedules clean" `Quick test_vdla_clean;
    Alcotest.test_case "compiler --validate: workloads, both fusion modes" `Slow
      test_compiler_validates_workloads;
    Alcotest.test_case "compiler --validate: dqn on cuda+llvm" `Quick
      test_compiler_validates_networks;
    Alcotest.test_case "seeded fault detected" `Quick test_validation_failed_raises;
    Alcotest.test_case "unit thread loop survives" `Quick test_unit_thread_loop_survives;
    Alcotest.test_case "sa drops non-finite scores" `Quick test_sa_rejects_nan_predictions;
    Alcotest.test_case "subst_map_expr linear" `Quick test_subst_map_expr_scales;
  ]
  @ List.map QCheck_alcotest.to_alcotest interval_properties
