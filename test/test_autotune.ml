(* Automation-layer tests: configuration spaces, the GBT cost model,
   the explorers, and the tuning loop (§5). *)

open Tvm_tir
module Cfg = Tvm_autotune.Cfg_space
module Gbt = Tvm_autotune.Gbt
module Feature = Tvm_autotune.Feature
module Explorers = Tvm_autotune.Explorers
module Tuner = Tvm_autotune.Tuner
module Templates = Tvm_autotune.Templates
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module Pool = Tvm_rpc.Device_pool
module Machine = Tvm_sim.Machine
open Test_helpers

let small_space () =
  Cfg.space
    [ Cfg.knob "a" [ 1; 2; 4 ]; Cfg.knob "b" [ 0; 1 ]; Cfg.knob "c" [ 3; 5; 7; 9 ] ]

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (Cfg.divisors 12);
  Alcotest.(check (list int)) "capped" [ 1; 2; 3; 4 ] (Cfg.divisors_upto 12 5)

let test_space_size () =
  Alcotest.(check int) "3*2*4" 24 (Cfg.size (small_space ()))

let config_roundtrip =
  QCheck.Test.make ~name:"config index bijection" ~count:100
    QCheck.(int_range 0 23)
    (fun idx ->
      let s = small_space () in
      Cfg.index_of s (Cfg.config_at s idx) = idx)

let mutate_stays_valid =
  QCheck.Test.make ~name:"mutation keeps values in choice sets" ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let s = small_space () in
      let rng = Random.State.make [| seed |] in
      let cfg = Cfg.mutate s rng (Cfg.random_config s rng) in
      List.for_all
        (fun k -> Array.exists (fun c -> c = Cfg.get cfg k.Cfg.k_name) k.Cfg.k_choices)
        s.Cfg.knobs)

let test_crossover () =
  let s = small_space () in
  let rng = Random.State.make [| 1 |] in
  let a = Cfg.random_config s rng and b = Cfg.random_config s rng in
  let child = Cfg.crossover rng a b in
  List.iter
    (fun (k, v) ->
      checkb "gene from a parent" (v = Cfg.get a k || v = Cfg.get b k))
    child

(* ------------------------------------------------------------------ *)
(* GBT                                                                  *)
(* ------------------------------------------------------------------ *)

let synth_data n f =
  let rng = Random.State.make [| 11 |] in
  let xs =
    Array.init n (fun _ -> Array.init 6 (fun _ -> Random.State.float rng 1.))
  in
  let ys = Array.map f xs in
  (xs, ys)

let test_gbt_learns_nonlinear () =
  let f x = (x.(0) *. x.(1)) +. (if x.(2) > 0.5 then 1. else 0.) -. x.(3) in
  let xs, ys = synth_data 300 f in
  let train_x = Array.sub xs 0 200 and train_y = Array.sub ys 0 200 in
  let test_x = Array.sub xs 200 100 and test_y = Array.sub ys 200 100 in
  let model = Gbt.fit ~params:{ Gbt.default_params with Gbt.obj = Gbt.Regression } train_x train_y in
  let acc = Gbt.rank_accuracy model test_x test_y in
  checkb (Printf.sprintf "rank accuracy %.2f > 0.8" acc) (acc > 0.8)

let test_gbt_rank_objective () =
  let f x = 10. *. x.(0) in
  let xs, ys = synth_data 100 f in
  let model = Gbt.fit ~params:{ Gbt.default_params with Gbt.obj = Gbt.Rank } xs ys in
  let acc = Gbt.rank_accuracy model xs ys in
  checkb "rank objective orders correctly" (acc > 0.9)

let test_gbt_empty () =
  let model = Gbt.fit [||] [||] in
  Alcotest.(check (float 1e-9)) "empty model predicts base" 0. (Gbt.predict model (Array.make 6 0.))

let test_transform_targets () =
  let ranked = Gbt.transform_targets Gbt.Rank [| 5.; 1.; 3. |] in
  checkb "rank order" (ranked.(1) < ranked.(2) && ranked.(2) < ranked.(0))

(* ------------------------------------------------------------------ *)
(* Features                                                             *)
(* ------------------------------------------------------------------ *)

let conv_template () =
  let d = Tensor.placeholder "at_d" (List.map Expr.int [ 1; 16; 8; 8 ]) in
  let w = Tensor.placeholder "at_w" (List.map Expr.int [ 16; 16; 3; 3 ]) in
  let c = Op.conv2d ~name:"at_conv" ~stride:1 d w in
  Templates.gpu_flat ~name:"at_tpl" c

let test_feature_extraction () =
  let tpl = conv_template () in
  let rng = Random.State.make [| 5 |] in
  let rec get_stmt n =
    if n = 0 then Alcotest.fail "no valid config found"
    else
      let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
      match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
      | Some s -> s
      | None -> get_stmt (n - 1)
  in
  let stmt = get_stmt 100 in
  let f = Feature.extract stmt in
  Alcotest.(check int) "fixed length" Feature.length (Array.length f);
  checkb "flops feature positive" (f.(0) > 0.);
  (* determinism *)
  checkb "deterministic" (Feature.extract stmt = f)

(* ------------------------------------------------------------------ *)
(* Explorers + tuner                                                    *)
(* ------------------------------------------------------------------ *)

let test_random_batch_dedups () =
  let s = small_space () in
  let rng = Random.State.make [| 2 |] in
  let visited = Hashtbl.create 16 in
  let batch = Explorers.random_batch s rng ~visited ~batch:10 in
  let hashes = List.map Cfg.hash batch in
  Alcotest.(check int) "no duplicates" (List.length hashes)
    (List.length (List.sort_uniq compare hashes))

let measure_fn_for machine =
  let pool = Pool.create [ Pool.Gpu_dev machine ] in
  Pool.measure_fn pool ~kind_pred:(fun _ -> true)

let test_tuner_improves () =
  let tpl = conv_template () in
  let measure = measure_fn_for Machine.titan_x in
  let res =
    Tuner.tune
      ~spec:(Tvm_spec.Job_spec.make ~seed:3 ())
      ~method_:Tuner.Ml_model ~measure ~n_trials:48 tpl
  in
  checkb "found a config" (res.Tuner.best_time > 0.);
  (* best-so-far is monotone *)
  let rec mono best = function
    | [] -> true
    | (t : Tuner.trial) :: rest ->
        t.Tuner.best_so_far <= best +. 1e-12 && mono t.Tuner.best_so_far rest
  in
  checkb "best-so-far monotone" (mono Float.infinity res.Tuner.history);
  Alcotest.(check int) "exactly n trials" 48 (List.length res.Tuner.history)

let test_ml_beats_random_on_budget () =
  let tpl = conv_template () in
  let run m =
    (Tuner.tune
       ~spec:(Tvm_spec.Job_spec.make ~seed:9 ())
       ~method_:m ~measure:(measure_fn_for Machine.titan_x) ~n_trials:40 tpl)
      .Tuner.best_time
  in
  let ml = run Tuner.Ml_model and rand = run Tuner.Random_search in
  (* allow a small tolerance: with tiny budgets random can tie *)
  checkb
    (Printf.sprintf "ml (%.4g) <= 1.25 * random (%.4g)" ml rand)
    (ml <= rand *. 1.25)

let test_measurement_deterministic () =
  let tpl = conv_template () in
  let rng = Random.State.make [| 17 |] in
  let rec valid n =
    if n = 0 then Alcotest.fail "no valid cfg"
    else
      let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
      match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
      | Some s -> (cfg, s)
      | None -> valid (n - 1)
  in
  let cfg, stmt = valid 100 in
  let time m =
    match Tvm_autotune.Measure_result.time m with
    | Some t -> t
    | None -> Alcotest.fail "expected a successful measurement"
  in
  let m1 = time (measure_fn_for Machine.titan_x cfg stmt) in
  let m2 = time (measure_fn_for Machine.titan_x cfg stmt) in
  Alcotest.(check (float 1e-12)) "same config same measurement" m1 m2

let test_db_best () =
  let module R = Tvm_autotune.Measure_result in
  let db = Tuner.Db.create () in
  Tuner.Db.add db "k" [ ("a", 1) ] (R.ok 0.5);
  Tuner.Db.add db "k" [ ("a", 2) ] (R.ok 0.3);
  Tuner.Db.add db "k" [ ("a", 4) ] (R.fail R.Timeout);
  Tuner.Db.add db "other" [ ("a", 3) ] (R.ok 0.1);
  Alcotest.(check int) "all records kept" 4 (Tuner.Db.size db);
  Alcotest.(check int) "ok tally" 3 (Tuner.Db.status_count db "ok");
  Alcotest.(check int) "timeout tally" 1 (Tuner.Db.status_count db "timeout");
  match Tuner.Db.best db "k" with
  | Some r -> (
      match R.time r.Tuner.Db.db_result with
      | Some t -> Alcotest.(check (float 1e-9)) "best time" 0.3 t
      | None -> Alcotest.fail "best record must be successful")
  | None -> Alcotest.fail "expected a record"

let suite =
  [
    Alcotest.test_case "divisors" `Quick test_divisors;
    Alcotest.test_case "space size" `Quick test_space_size;
    QCheck_alcotest.to_alcotest config_roundtrip;
    QCheck_alcotest.to_alcotest mutate_stays_valid;
    Alcotest.test_case "crossover" `Quick test_crossover;
    Alcotest.test_case "gbt learns nonlinear" `Quick test_gbt_learns_nonlinear;
    Alcotest.test_case "gbt rank objective" `Quick test_gbt_rank_objective;
    Alcotest.test_case "gbt empty" `Quick test_gbt_empty;
    Alcotest.test_case "rank transform" `Quick test_transform_targets;
    Alcotest.test_case "feature extraction" `Quick test_feature_extraction;
    Alcotest.test_case "random batch dedups" `Quick test_random_batch_dedups;
    Alcotest.test_case "tuner improves" `Quick test_tuner_improves;
    Alcotest.test_case "ml >= random on budget" `Quick test_ml_beats_random_on_budget;
    Alcotest.test_case "deterministic measurement" `Quick test_measurement_deterministic;
    Alcotest.test_case "tuning database" `Quick test_db_best;
  ]
