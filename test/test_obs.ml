(* Observability layer tests: span nesting and exception safety, the
   disabled-mode zero-allocation fast path, log-histogram percentiles
   (including within-bucket interpolation), metrics registry dumps,
   Chrome trace-event JSON well-formedness — lanes, metadata and flow
   events included — plus the tuning flight recorder: journal record
   round-trips, byte-identical journals at any -j and with the compile
   cache on or off under injected faults, straggler detection in the
   report analyzer, and the benchmark regression gate. *)

module Json = Tvm_obs.Json
module Trace = Tvm_obs.Trace
module Metrics = Tvm_obs.Metrics
module Profile = Tvm_obs.Profile
module Journal = Tvm_obs.Journal
module Report = Tvm_obs.Report
module Gate = Tvm_obs.Bench_gate
module Par = Tvm_par.Pool
module Tuner = Tvm_autotune.Tuner
module Templates = Tvm_autotune.Templates
module DPool = Tvm_rpc.Device_pool
module Fault = Tvm_rpc.Fault
module Machine = Tvm_sim.Machine
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
open Test_helpers

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(** Offset of [needle] in [haystack]; raises [Not_found]. *)
let index_of haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then raise Not_found
    else if String.sub haystack i nn = needle then i
    else scan (i + 1)
  in
  scan 0

let with_fresh_trace f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

(* ---- json ---- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "quote\" back\\slash \n tab\t");
        ("n", Json.Num 3.25);
        ("i", Json.Num 42.);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Num 1.; Json.Str "two"; Json.Obj [] ]);
      ]
  in
  let reparsed = Json.parse (Json.to_string v) in
  checkb "roundtrip equal" (reparsed = v);
  (* integral floats must print as JSON integers *)
  Alcotest.(check string) "int printing" "42" (Json.to_string (Json.Num 42.));
  (* non-finite degrades to null, keeping output valid JSON *)
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Num Float.nan));
  (* unicode escapes decode *)
  (match Json.parse "\"a\\u0041b\"" with
  | Json.Str s -> Alcotest.(check string) "\\u decode" "aAb" s
  | _ -> Alcotest.fail "expected string");
  (* malformed input raises *)
  checkb "trailing garbage rejected"
    (match Json.parse "{} x" with
    | exception Json.Parse_error _ -> true
    | _ -> false)

let test_json_nonfinite () =
  (* the smart constructor collapses every non-finite to Null at build
     time, so values survive a write → parse round trip structurally *)
  checkb "num nan is Null" (Json.num Float.nan = Json.Null);
  checkb "num +inf is Null" (Json.num Float.infinity = Json.Null);
  checkb "num -inf is Null" (Json.num Float.neg_infinity = Json.Null);
  checkb "num finite is Num" (Json.num 2.5 = Json.Num 2.5);
  Alcotest.(check string) "num_string nan" "null" (Json.num_string Float.nan);
  Alcotest.(check string) "num_string inf" "null" (Json.num_string Float.infinity);
  (* %.17g prints enough digits to reparse bit-exactly *)
  List.iter
    (fun x ->
      match Json.parse (Json.num_string x) with
      | Json.Num y -> checkb (Printf.sprintf "%h reparses exactly" x) (x = y)
      | _ -> Alcotest.fail "expected number")
    [ 0.1; 1. /. 3.; 1.5e-4; 6.02214076e23; -0.0317 ];
  (* embedded in a document: parse sees null, not a JSON error *)
  let doc = Json.Obj [ ("t", Json.num Float.nan); ("u", Json.num 1.5) ] in
  let reparsed = Json.parse (Json.to_string doc) in
  checkb "nan field reparses as null" (Json.member "t" reparsed = Some Json.Null);
  checkb "finite field intact" (Json.member "u" reparsed = Some (Json.Num 1.5))

(* ---- trace ---- *)

let test_span_nesting () =
  with_fresh_trace @@ fun () ->
  let r =
    Trace.with_span "outer" ~attrs:[ ("k", "v") ] (fun () ->
        Trace.with_span "inner" (fun () ->
            Trace.instant "tick" ~attrs:[ ("i", "1") ];
            7))
  in
  Alcotest.(check int) "result passes through" 7 r;
  Alcotest.(check int) "two spans" 2 (Trace.span_count ());
  Alcotest.(check int) "one event" 1 (Trace.event_count ());
  let spans = Trace.spans () in
  let outer = List.find (fun s -> s.Trace.sp_name = "outer") spans in
  let inner = List.find (fun s -> s.Trace.sp_name = "inner") spans in
  Alcotest.(check int) "inner parented to outer" outer.Trace.sp_id inner.Trace.sp_parent;
  Alcotest.(check int) "outer is root" (-1) outer.Trace.sp_parent;
  Alcotest.(check int) "depths" 1 inner.Trace.sp_depth;
  (* temporal containment *)
  checkb "inner starts after outer" (inner.Trace.sp_start_ns >= outer.Trace.sp_start_ns);
  checkb "inner shorter" (inner.Trace.sp_dur_ns <= outer.Trace.sp_dur_ns);
  let tree = Trace.to_tree_string () in
  checkb "tree mentions both" (contains tree "outer" && contains tree "inner");
  (* child indented under parent *)
  checkb "inner after outer in tree" (index_of tree "outer" < index_of tree "inner")

let test_span_exception_safety () =
  with_fresh_trace @@ fun () ->
  (try
     Trace.with_span "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1 (Trace.span_count ());
  match Trace.find_span "boom" with
  | Some s -> checkb "error attr recorded" (List.mem_assoc "error" s.Trace.sp_attrs)
  | None -> Alcotest.fail "span missing"

let test_disabled_zero_cost () =
  Trace.set_enabled false;
  Trace.reset ();
  let f () = () in
  (* warm up (first call may trigger lazy init) *)
  Trace.with_span "warm" f;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Trace.with_span "off" f
  done;
  let allocated = Gc.minor_words () -. before in
  (* zero-allocation fast path: budget is a handful of boxed floats for
     the Gc counters themselves, not 10k spans *)
  checkb (Printf.sprintf "disabled path allocates ~nothing (%.0f words)" allocated)
    (allocated < 256.);
  Alcotest.(check int) "no spans recorded" 0 (Trace.span_count ())

let trace_events () =
  let str = Json.to_string (Trace.to_chrome_json ()) in
  match Json.member "traceEvents" (Json.parse str) with
  | Some (Json.List l) -> l
  | _ -> Alcotest.fail "missing traceEvents"

let ph e = match Json.member "ph" e with Some (Json.Str s) -> s | _ -> "?"

let test_chrome_json_wellformed () =
  with_fresh_trace @@ fun () ->
  Trace.with_span "compile" ~attrs:[ ("target", "cuda \"quoted\"\n") ] (fun () ->
      Trace.with_span "phase.tuning" (fun () ->
          for i = 1 to 3 do
            Trace.instant "tuner.trial" ~attrs:[ ("trial", string_of_int i) ]
          done));
  let events = trace_events () in
  let meta, rest = List.partition (fun e -> ph e = "M") events in
  Alcotest.(check int) "2 spans + 3 instants" 5 (List.length rest);
  (* metadata names the host process and the main-thread lane *)
  checkb "host process named"
    (List.exists
       (fun e ->
         Json.member "name" e = Some (Json.Str "process_name")
         && Json.member "pid" e = Some (Json.Num 1.)
         && Option.bind (Json.member "args" e) (Json.member "name")
            = Some (Json.Str "tvm host"))
       meta);
  checkb "main thread named"
    (List.exists
       (fun e ->
         Json.member "name" e = Some (Json.Str "thread_name")
         && Option.bind (Json.member "args" e) (Json.member "name")
            = Some (Json.Str "main"))
       meta);
  List.iter
    (fun e ->
      checkb "has name" (Json.member "name" e <> None);
      checkb "has ts" (match Json.member "ts" e with Some (Json.Num _) -> true | _ -> false);
      checkb "has pid" (match Json.member "pid" e with Some (Json.Num _) -> true | _ -> false);
      checkb "has tid" (match Json.member "tid" e with Some (Json.Num _) -> true | _ -> false);
      match ph e with
      | "X" ->
          checkb "complete event has dur"
            (match Json.member "dur" e with Some (Json.Num d) -> d >= 0. | _ -> false)
      | "i" -> ()
      | _ -> Alcotest.fail "unexpected phase")
    rest;
  (* the tricky attribute survived escaping and reparsing *)
  let compile_ev =
    List.find (fun e -> Json.member "name" e = Some (Json.Str "compile")) rest
  in
  match Json.member "args" compile_ev with
  | Some args ->
      Alcotest.(check (option string)) "attr preserved" (Some "cuda \"quoted\"\n")
        (Option.bind (Json.member "target" args) Json.to_string_opt)
  | None -> Alcotest.fail "missing args"

let test_trace_lanes_and_flows () =
  with_fresh_trace @@ fun () ->
  Trace.name_thread ~lane:(Trace.device_lane 3) "dev 3 (test)";
  Trace.with_span "trial" (fun () ->
      Trace.flow ~id:42 Trace.Flow_start "trial";
      let start = Trace.now_ns () in
      Trace.flow ~lane:(Trace.device_lane 3) ~id:42 Trace.Flow_step "trial";
      Trace.slice
        ~lane:(Trace.device_lane 3)
        ~attrs:[ ("outcome", "ok") ]
        ~start_ns:start "job 42";
      Trace.flow ~id:42 Trace.Flow_end "trial");
  (* lane slices sit outside the span tree but are still counted *)
  Alcotest.(check int) "trial span + device slice" 2 (Trace.span_count ());
  let tree = Trace.to_tree_string () in
  checkb "slice kept out of the tree" (not (contains tree "job 42"));
  checkb "tree keeps the host span" (contains tree "trial");
  let events = trace_events () in
  let of_ph p = List.filter (fun e -> ph e = p) events in
  Alcotest.(check int) "one flow start" 1 (List.length (of_ph "s"));
  Alcotest.(check int) "one flow step" 1 (List.length (of_ph "t"));
  let fend = match of_ph "f" with [ e ] -> e | _ -> Alcotest.fail "one flow end" in
  checkb "flow end binds enclosing slice" (Json.member "bp" fend = Some (Json.Str "e"));
  List.iter
    (fun e ->
      checkb "flow carries the trial uid" (Json.member "id" e = Some (Json.Num 42.)))
    (of_ph "s" @ of_ph "t" @ of_ph "f");
  (* the job slice landed on the device lane, labelled by metadata *)
  let slice_ev =
    List.find (fun e -> Json.member "name" e = Some (Json.Str "job 42")) events
  in
  Alcotest.(check int) "device pid" 2
    (match Json.member "pid" slice_ev with Some (Json.Num n) -> int_of_float n | _ -> -1);
  Alcotest.(check int) "device tid" 4
    (match Json.member "tid" slice_ev with Some (Json.Num n) -> int_of_float n | _ -> -1);
  checkb "device lane labelled"
    (List.exists
       (fun e ->
         Json.member "name" e = Some (Json.Str "thread_name")
         && Option.bind (Json.member "args" e) (Json.member "name")
            = Some (Json.Str "dev 3 (test)"))
       (of_ph "M"));
  (* the flow step's timestamp falls inside the slice it should bind to *)
  let num k e =
    match Option.bind (Json.member k e) Json.to_num_opt with
    | Some n -> n
    | None -> Float.nan
  in
  let step = List.hd (of_ph "t") in
  checkb "flow step inside its slice"
    (num "ts" step >= num "ts" slice_ev
    && num "ts" step <= num "ts" slice_ev +. num "dur" slice_ev)

(* ---- metrics ---- *)

let test_metrics_registry () =
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.incr "c" ~by:2.;
  Metrics.set_gauge "g" 1.5;
  Metrics.set_gauge "g" 2.5;
  Alcotest.(check (option (float 1e-9))) "counter" (Some 3.) (Metrics.get "c");
  Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 2.5) (Metrics.get "g");
  checkb "kind mismatch rejected"
    (match Metrics.incr "g" with exception Invalid_argument _ -> true | _ -> false);
  let j = Metrics.to_json () in
  let reparsed = Json.parse (Json.to_string j) in
  checkb "counters in json"
    (Option.bind (Json.member "counters" reparsed) (Json.member "c")
    = Some (Json.Num 3.));
  let text = Metrics.dump_text () in
  checkb "text dump mentions gauge" (contains text "gauge")

let test_histogram_percentiles () =
  Metrics.reset ();
  (* 1..1000 ms-scale values: exact median 0.5005 s *)
  for i = 1 to 1000 do
    Metrics.observe "h" (Float.of_int i /. 1000.)
  done;
  Alcotest.(check (option (float 1e-9))) "count" (Some 1000.) (Metrics.get "h");
  let p50 = Option.get (Metrics.percentile "h" 50.) in
  let p99 = Option.get (Metrics.percentile "h" 99.) in
  (* log-bucket resolution is a factor of 10^(1/8) ≈ 1.33: assert the
     estimate lands within one bucket of truth, generously *)
  checkb (Printf.sprintf "p50 ≈ 0.5 (got %g)" p50) (p50 > 0.3 && p50 < 0.8);
  checkb (Printf.sprintf "p99 ≈ 0.99 (got %g)" p99) (p99 > 0.7 && p99 <= 1.0);
  checkb "p0 clamps to min" (Option.get (Metrics.percentile "h" 0.) >= 0.001);
  checkb "p100 clamps to max" (Option.get (Metrics.percentile "h" 100.) <= 1.0);
  (* non-finite observations are dropped, not crashed on *)
  Metrics.observe "h" Float.infinity;
  Alcotest.(check (option (float 1e-9))) "inf dropped" (Some 1000.) (Metrics.get "h")

let test_histogram_interpolation () =
  Metrics.reset ();
  (* 301 values uniform on [1.0, 1.3] s: the whole distribution lands in
     the single log bucket [1.0, 10^(1/8) ≈ 1.334). Pre-fix every
     percentile snapped to the same bucket edge; within-bucket
     interpolation must separate and roughly place them. *)
  for i = 0 to 300 do
    Metrics.observe "tight" (1.0 +. (0.001 *. Float.of_int i))
  done;
  let pc p = Option.get (Metrics.percentile "tight" p) in
  let p50 = pc 50. and p90 = pc 90. and p99 = pc 99. in
  checkb
    (Printf.sprintf "strictly ordered within one bucket (%g %g %g)" p50 p90 p99)
    (p50 < p90 && p90 < p99);
  checkb (Printf.sprintf "p50 ≈ 1.15 (got %g)" p50) (p50 > 1.10 && p50 < 1.20);
  checkb (Printf.sprintf "p90 ≈ 1.27 (got %g)" p90) (p90 > 1.23 && p90 < 1.30);
  checkb (Printf.sprintf "p99 ≈ 1.30 (got %g)" p99) (p99 > 1.27 && p99 <= 1.30);
  (* estimates clip to the observed range, not the bucket's bounds *)
  checkb "p100 capped at max" (pc 100. <= 1.3 +. 1e-9);
  checkb "p0 floored at min" (pc 0. >= 1.0 -. 1e-9)

(* ---- journal ---- *)

let test_journal_roundtrip () =
  let samples =
    [
      Journal.Run { r_name = "obs tpl \"q\""; r_method = "ml_model"; r_trials = 32 };
      Journal.Propose
        { p_uid = 0; p_origin = "sa"; p_chain = 3;
          p_score = 0.12345678901234567; p_config = "a=1 \"b\"=2\n" };
      Journal.Propose
        { p_uid = 1; p_origin = "seed"; p_chain = -1; p_score = Float.nan;
          p_config = "a=1" };
      Journal.Prepare { q_uid = 0; q_cache = "hit"; q_valid = true };
      Journal.Prepare { q_uid = 1; q_cache = "miss"; q_valid = false };
      Journal.Dispatch
        { d_uid = 0; d_dev = 2; d_device = "gpu"; d_attempt = 1;
          d_outcome = "timeout"; d_cost_s = 10.; d_queue_s = 0.25;
          d_shard = -1; d_stolen = false; d_spec = false };
      Journal.Dispatch
        { d_uid = 2; d_dev = 40; d_device = "gpu"; d_attempt = 0;
          d_outcome = "cancelled"; d_cost_s = 0.3; d_queue_s = 0.;
          d_shard = 5; d_stolen = true; d_spec = true };
      Journal.Measure
        { m_uid = 0; m_status = "ok"; m_time_s = Some 1.5e-4; m_attempts = 2 };
      Journal.Measure
        { m_uid = 1; m_status = "crash"; m_time_s = None; m_attempts = 3 };
    ]
  in
  List.iter
    (fun e ->
      let line = Journal.entry_to_line e in
      checkb "line is one valid JSON object"
        (match Json.parse line with Json.Obj _ -> true | _ -> false);
      match Journal.parse_line line with
      | None -> Alcotest.fail ("unparseable: " ^ line)
      | Some e' ->
          (* compare re-serialized lines: nan <> nan structurally, but
             both print as null *)
          Alcotest.(check string) "round-trip stable" line (Journal.entry_to_line e'))
    samples;
  checkb "blank line skipped" (Journal.parse_line "" = None);
  checkb "foreign line skipped" (Journal.parse_line {|{"ev":"wat"}|} = None);
  checkb "garbage skipped" (Journal.parse_line "not json at all" = None)

let test_journal_enablement () =
  Journal.set_enabled false;
  Journal.reset ();
  (* uids flow whether or not the journal records, so sequences don't
     depend on observability flags *)
  let u0 = Journal.fresh_uid () in
  let u1 = Journal.fresh_uid () in
  Alcotest.(check int) "uids sequential while disabled" (u0 + 1) u1;
  Journal.run ~name:"off" ~method_:"x" ~trials:1;
  Alcotest.(check int) "disabled journal records nothing" 0 (Journal.size ());
  Journal.set_enabled true;
  Alcotest.(check int) "enabling resets the uid counter" 0 (Journal.fresh_uid ());
  Journal.run ~name:"on" ~method_:"x" ~trials:1;
  Alcotest.(check int) "enabled journal records" 1 (Journal.size ());
  Journal.set_enabled false;
  (* job tags: out-of-range and cleared lookups answer -1 *)
  Journal.set_job_tags [| 7; 8 |];
  Alcotest.(check int) "tag 0" 7 (Journal.job_tag 0);
  Alcotest.(check int) "tag 1" 8 (Journal.job_tag 1);
  Alcotest.(check int) "tag out of range" (-1) (Journal.job_tag 2);
  Alcotest.(check int) "negative job" (-1) (Journal.job_tag (-1));
  Journal.clear_job_tags ();
  Alcotest.(check int) "cleared" (-1) (Journal.job_tag 0)

(* The end-to-end determinism contract: one tuning run's journal is
   byte-identical at -j1 and -j4, with the compile cache on or off, on
   a clean fleet and on one injecting 20% transient faults. *)

let obs_template =
  lazy
    (let d = Tensor.placeholder "obs_d" (List.map Tvm_tir.Expr.int [ 1; 16; 8; 8 ]) in
     let w = Tensor.placeholder "obs_w" (List.map Tvm_tir.Expr.int [ 16; 16; 3; 3 ]) in
     let c = Op.conv2d ~name:"obs_conv" ~stride:1 d w in
     Templates.gpu_flat ~name:"obs_tpl" c)

(* Simulated-time metrics only: pool.* and tuner.* are derived from the
   deterministic simulation, while par.* and tune.phase.*_s are wall
   clock and legitimately vary across -j. *)
let deterministic_metrics () =
  let keep name =
    String.starts_with ~prefix:"pool." name
    || String.starts_with ~prefix:"tuner." name
  in
  match Metrics.to_json () with
  | Json.Obj sections ->
      Json.to_string
        (Json.Obj
           (List.map
              (fun (sec, v) ->
                match v with
                | Json.Obj kvs ->
                    (sec, Json.Obj (List.filter (fun (k, _) -> keep k) kvs))
                | v -> (sec, v))
              sections))
  | j -> Json.to_string j

let run_tune_journaled ~jobs ~fault_rate ~use_cache () =
  let tpl = Lazy.force obs_template in
  Journal.set_enabled false;
  Journal.set_enabled true;
  (* fresh registry so counters don't accumulate across runs *)
  Metrics.reset ();
  let fault_plan =
    if fault_rate > 0. then Fault.transient ~seed:7 ~rate:fault_rate ()
    else Fault.none
  in
  let pool =
    DPool.create ~fault_plan (List.init 4 (fun _ -> DPool.Gpu_dev Machine.titan_x))
  in
  let par = Par.create ~domains:jobs () in
  let measure = DPool.measure_fn pool ~kind_pred:(fun _ -> true) in
  let measure_batch = DPool.batch_measure_fn ~par pool ~kind_pred:(fun _ -> true) in
  let result =
    Tuner.tune
      ~spec:(Tvm_spec.Job_spec.make ~seed:5 ~jobs ~use_compile_cache:use_cache ())
      ~measure_batch ~method_:Tuner.Ml_model ~measure ~n_trials:32 tpl
  in
  let journal = Journal.to_jsonl () in
  let metrics = deterministic_metrics () in
  Journal.set_enabled false;
  (journal, metrics, result.Tuner.best_time)

let test_journal_deterministic () =
  let j1, m1, b1 = run_tune_journaled ~jobs:1 ~fault_rate:0.2 ~use_cache:true () in
  let j4, m4, b4 = run_tune_journaled ~jobs:4 ~fault_rate:0.2 ~use_cache:true () in
  checkb "journal nonempty" (String.length j1 > 0);
  checkb "journal has dispatch records" (contains j1 {|"ev":"dispatch"|});
  checkb "the fault plan actually fired"
    (contains j1 "timeout" || contains j1 "crash" || contains j1 "corrupt");
  Alcotest.(check string) "journal byte-identical -j1 vs -j4 @ 20% faults" j1 j4;
  Alcotest.(check string) "deterministic metrics identical -j1 vs -j4" m1 m4;
  checkb "best time identical" (b1 = b4);
  let joff, _, boff = run_tune_journaled ~jobs:4 ~fault_rate:0.2 ~use_cache:false () in
  Alcotest.(check string) "journal byte-identical cache on vs off" j1 joff;
  checkb "best time identical cache off" (b1 = boff);
  (* clean fleet too *)
  let c1, _, _ = run_tune_journaled ~jobs:1 ~fault_rate:0. ~use_cache:true () in
  let c4, _, _ = run_tune_journaled ~jobs:4 ~fault_rate:0. ~use_cache:true () in
  Alcotest.(check string) "clean-fleet journal byte-identical" c1 c4;
  (* a journal parsed back from its own text analyzes like the live one *)
  let entries = List.filter_map Journal.parse_line (String.split_on_char '\n' j1) in
  let r = Report.analyze entries in
  checkb "report sees the trials" (r.Report.rp_trials >= 32);
  (* invalid configs never reach the pool, so dispatches can undercount
     trials — but the measured ones must all be there *)
  checkb "report sees dispatches" (r.Report.rp_dispatches > 0);
  checkb "report sees retries on the faulty fleet" (r.Report.rp_retries > 0)

(* ---- report ---- *)

let test_report_straggler () =
  let entries = ref [] in
  let add e = entries := e :: !entries in
  let uid = ref 0 in
  add (Journal.Run { r_name = "tpl"; r_method = "ml_model"; r_trials = 30 });
  (* healthy devs 1..3: first-attempt ok at ~0.5 s per job *)
  for dev = 1 to 3 do
    for _ = 1 to 8 do
      let u = !uid in
      incr uid;
      add
        (Journal.Propose
           { p_uid = u; p_origin = "sa"; p_chain = dev; p_score = 1.0;
             p_config = Printf.sprintf "a=%d" u });
      add (Journal.Prepare { q_uid = u; q_cache = "miss"; q_valid = true });
      add
        (Journal.Dispatch
           { d_uid = u; d_dev = dev; d_device = "gpu"; d_attempt = 0;
             d_outcome = "ok"; d_cost_s = 0.5; d_queue_s = 0.;
             d_shard = -1; d_stolen = false; d_spec = false });
      add
        (Journal.Measure
           { m_uid = u; m_status = "ok";
             m_time_s = Some (0.001 *. Float.of_int (u + 1)); m_attempts = 1 })
    done
  done;
  (* dev 0 is flaky: every job times out at the 10 s budget, then
     retries successfully elsewhere *)
  for _ = 1 to 6 do
    let u = !uid in
    incr uid;
    add
      (Journal.Propose
         { p_uid = u; p_origin = "random"; p_chain = -1; p_score = Float.nan;
           p_config = Printf.sprintf "a=%d" u });
    add (Journal.Prepare { q_uid = u; q_cache = "hit"; q_valid = true });
    add
      (Journal.Dispatch
         { d_uid = u; d_dev = 0; d_device = "gpu"; d_attempt = 0;
           d_outcome = "timeout"; d_cost_s = 10.; d_queue_s = 0.;
           d_shard = -1; d_stolen = false; d_spec = false });
    add
      (Journal.Dispatch
         { d_uid = u; d_dev = 1; d_device = "gpu"; d_attempt = 1;
           d_outcome = "ok"; d_cost_s = 0.5; d_queue_s = 0.1;
           d_shard = -1; d_stolen = false; d_spec = false });
    add
      (Journal.Measure
         { m_uid = u; m_status = "ok"; m_time_s = Some 0.002; m_attempts = 2 })
  done;
  let r = Report.analyze ~top:3 (List.rev !entries) in
  Alcotest.(check int) "trials" 30 r.Report.rp_trials;
  Alcotest.(check int) "dispatches" 36 r.Report.rp_dispatches;
  Alcotest.(check int) "retries" 6 r.Report.rp_retries;
  Alcotest.(check int) "cache hits" 6 r.Report.rp_cache_hits;
  Alcotest.(check int) "cache misses" 24 r.Report.rp_cache_misses;
  Alcotest.(check (list (pair string int)))
    "origins" [ ("random", 6); ("sa", 24) ] r.Report.rp_origins;
  Alcotest.(check int) "top-K slowest" 3 (List.length r.Report.rp_slowest);
  (match r.Report.rp_best with
  | Some b ->
      Alcotest.(check int) "best trial is the fastest" 0 b.Report.ti_uid
  | None -> Alcotest.fail "no best trial");
  Alcotest.(check int) "three SA chains" 3 (List.length r.Report.rp_chains);
  (* only dev 0 is flagged: cost outlier and fail-rate outlier at once *)
  (match Report.stragglers r with
  | [ d ] ->
      Alcotest.(check int) "dev 0 flagged" 0 d.Report.ds_dev;
      checkb "timeouts attributed" (d.Report.ds_timeouts = 6);
      checkb "mean cost is the timeout budget" (abs_float (d.Report.ds_mean_cost_s -. 10.) < 1e-9)
  | ss -> Alcotest.fail (Printf.sprintf "expected 1 straggler, got %d" (List.length ss)));
  let text = Report.render r in
  checkb "render marks the straggler" (contains text "STRAGGLER");
  checkb "render attributes it to dev 0" (contains text "straggler dev 0")

let test_report_clean_fleet () =
  (* same healthy traffic without the flaky device: nothing flagged *)
  let entries = ref [] in
  let add e = entries := e :: !entries in
  for u = 0 to 23 do
    add
      (Journal.Dispatch
         { d_uid = u; d_dev = u mod 4; d_device = "gpu"; d_attempt = 0;
           d_outcome = "ok"; d_cost_s = 0.5; d_queue_s = 0.;
           d_shard = -1; d_stolen = false; d_spec = false });
    add
      (Journal.Measure
         { m_uid = u; m_status = "ok"; m_time_s = Some 0.001; m_attempts = 1 })
  done;
  let r = Report.analyze (List.rev !entries) in
  checkb "no stragglers on a clean fleet" (Report.stragglers r = []);
  checkb "render says so" (contains (Report.render r) "no stragglers")

(* ---- bench gate ---- *)

let test_bench_gate () =
  let base =
    Json.parse
      {|{"gauges":{"bench.partune.speedup":4.0,"bench.partune.identical_best":1},
         "histograms":{"pool.job_cost_s":{"p90":1.0}}}|}
  in
  let rules =
    [
      Gate.rule "gauges" "bench.partune.speedup" ~dir:Gate.Higher_better ~tol:0.5;
      Gate.rule "gauges" "bench.partune.identical_best" ~dir:Gate.Exact ~tol:0.;
      Gate.rule "histograms" "pool.job_cost_s" ~field:"p90" ~dir:Gate.Lower_better
        ~tol:0.5;
      Gate.rule "gauges" "bench.not_yet_in_baseline" ~dir:Gate.Higher_better
        ~tol:0.1;
    ]
  in
  (* identity: the baseline vs itself passes every present rule *)
  let checks = Gate.compare_metrics ~rules ~baseline:base ~current:base in
  checkb "identity run passes" (Gate.failed checks = []);
  checkb "unknown metric skipped, not failed"
    (List.exists
       (fun c -> match c.Gate.ck_verdict with Gate.Skip _ -> true | _ -> false)
       checks);
  (* within tolerance: a mild dip passes *)
  let mild =
    Json.parse
      {|{"gauges":{"bench.partune.speedup":2.1,"bench.partune.identical_best":1},
         "histograms":{"pool.job_cost_s":{"p90":1.4}}}|}
  in
  checkb "mild drift tolerated"
    (Gate.failed (Gate.compare_metrics ~rules ~baseline:base ~current:mild) = []);
  (* injected regression: speedup collapse, determinism drift, and a
     metric the run stopped producing — all three must fail *)
  let bad =
    Json.parse
      {|{"gauges":{"bench.partune.speedup":1.2,"bench.partune.identical_best":0},
         "histograms":{}}|}
  in
  let checks = Gate.compare_metrics ~rules ~baseline:base ~current:bad in
  Alcotest.(check int) "three failures" 3 (List.length (Gate.failed checks));
  let text = Gate.render checks in
  checkb "render reports FAIL" (contains text "FAIL");
  checkb "render totals the damage" (contains text "3 failed");
  (* the committed default rules address real metric names *)
  List.iter
    (fun r ->
      checkb "rule section valid"
        (List.mem r.Gate.ru_section [ "counters"; "gauges"; "histograms" ]))
    Gate.default_rules

(* ---- profile report ---- *)

let test_profile_report () =
  let records =
    [
      { Profile.pr_name = "conv"; pr_group = 0; pr_calls = 2; pr_time_s = 2e-3;
        pr_launch_s = 1e-5; pr_bytes = 1e6; pr_flops = 1e9 };
      { Profile.pr_name = "dense"; pr_group = 1; pr_calls = 2; pr_time_s = 1e-3;
        pr_launch_s = 1e-5; pr_bytes = 2e5; pr_flops = 1e8 };
    ]
  in
  let report =
    { Profile.rp_target = "cuda"; rp_records = records; rp_total_s = 3.02e-3 }
  in
  let table = Profile.to_table report in
  checkb "table ranks conv first" (index_of table "conv" < index_of table "dense");
  let j = Json.parse (Json.to_string (Profile.to_json report)) in
  match Option.bind (Json.member "kernels" j) Json.to_list_opt with
  | Some l -> Alcotest.(check int) "2 kernels in json" 2 (List.length l)
  | None -> Alcotest.fail "missing kernels"

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json non-finite" `Quick test_json_nonfinite;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "disabled mode zero cost" `Quick test_disabled_zero_cost;
    Alcotest.test_case "chrome json wellformed" `Quick test_chrome_json_wellformed;
    Alcotest.test_case "trace lanes and flows" `Quick test_trace_lanes_and_flows;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram interpolation" `Quick test_histogram_interpolation;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal enablement" `Quick test_journal_enablement;
    Alcotest.test_case "journal deterministic" `Slow test_journal_deterministic;
    Alcotest.test_case "report straggler" `Quick test_report_straggler;
    Alcotest.test_case "report clean fleet" `Quick test_report_clean_fleet;
    Alcotest.test_case "bench gate" `Quick test_bench_gate;
    Alcotest.test_case "profile report" `Quick test_profile_report;
  ]
