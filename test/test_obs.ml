(* Observability layer tests: span nesting and exception safety, the
   disabled-mode zero-allocation fast path, log-histogram percentiles,
   metrics registry dumps, and Chrome trace-event JSON well-formedness
   (checked by re-parsing the emitted file with the JSON parser). *)

module Json = Tvm_obs.Json
module Trace = Tvm_obs.Trace
module Metrics = Tvm_obs.Metrics
module Profile = Tvm_obs.Profile
open Test_helpers

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(** Offset of [needle] in [haystack]; raises [Not_found]. *)
let index_of haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then raise Not_found
    else if String.sub haystack i nn = needle then i
    else scan (i + 1)
  in
  scan 0

let with_fresh_trace f =
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

(* ---- json ---- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "quote\" back\\slash \n tab\t");
        ("n", Json.Num 3.25);
        ("i", Json.Num 42.);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Num 1.; Json.Str "two"; Json.Obj [] ]);
      ]
  in
  let reparsed = Json.parse (Json.to_string v) in
  checkb "roundtrip equal" (reparsed = v);
  (* integral floats must print as JSON integers *)
  Alcotest.(check string) "int printing" "42" (Json.to_string (Json.Num 42.));
  (* non-finite degrades to null, keeping output valid JSON *)
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Num Float.nan));
  (* unicode escapes decode *)
  (match Json.parse "\"a\\u0041b\"" with
  | Json.Str s -> Alcotest.(check string) "\\u decode" "aAb" s
  | _ -> Alcotest.fail "expected string");
  (* malformed input raises *)
  checkb "trailing garbage rejected"
    (match Json.parse "{} x" with
    | exception Json.Parse_error _ -> true
    | _ -> false)

(* ---- trace ---- *)

let test_span_nesting () =
  with_fresh_trace @@ fun () ->
  let r =
    Trace.with_span "outer" ~attrs:[ ("k", "v") ] (fun () ->
        Trace.with_span "inner" (fun () ->
            Trace.instant "tick" ~attrs:[ ("i", "1") ];
            7))
  in
  Alcotest.(check int) "result passes through" 7 r;
  Alcotest.(check int) "two spans" 2 (Trace.span_count ());
  Alcotest.(check int) "one event" 1 (Trace.event_count ());
  let spans = Trace.spans () in
  let outer = List.find (fun s -> s.Trace.sp_name = "outer") spans in
  let inner = List.find (fun s -> s.Trace.sp_name = "inner") spans in
  Alcotest.(check int) "inner parented to outer" outer.Trace.sp_id inner.Trace.sp_parent;
  Alcotest.(check int) "outer is root" (-1) outer.Trace.sp_parent;
  Alcotest.(check int) "depths" 1 inner.Trace.sp_depth;
  (* temporal containment *)
  checkb "inner starts after outer" (inner.Trace.sp_start_ns >= outer.Trace.sp_start_ns);
  checkb "inner shorter" (inner.Trace.sp_dur_ns <= outer.Trace.sp_dur_ns);
  let tree = Trace.to_tree_string () in
  checkb "tree mentions both" (contains tree "outer" && contains tree "inner");
  (* child indented under parent *)
  checkb "inner after outer in tree" (index_of tree "outer" < index_of tree "inner")

let test_span_exception_safety () =
  with_fresh_trace @@ fun () ->
  (try
     Trace.with_span "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1 (Trace.span_count ());
  match Trace.find_span "boom" with
  | Some s -> checkb "error attr recorded" (List.mem_assoc "error" s.Trace.sp_attrs)
  | None -> Alcotest.fail "span missing"

let test_disabled_zero_cost () =
  Trace.set_enabled false;
  Trace.reset ();
  let f () = () in
  (* warm up (first call may trigger lazy init) *)
  Trace.with_span "warm" f;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Trace.with_span "off" f
  done;
  let allocated = Gc.minor_words () -. before in
  (* zero-allocation fast path: budget is a handful of boxed floats for
     the Gc counters themselves, not 10k spans *)
  checkb (Printf.sprintf "disabled path allocates ~nothing (%.0f words)" allocated)
    (allocated < 256.);
  Alcotest.(check int) "no spans recorded" 0 (Trace.span_count ())

let test_chrome_json_wellformed () =
  with_fresh_trace @@ fun () ->
  Trace.with_span "compile" ~attrs:[ ("target", "cuda \"quoted\"\n") ] (fun () ->
      Trace.with_span "phase.tuning" (fun () ->
          for i = 1 to 3 do
            Trace.instant "tuner.trial" ~attrs:[ ("trial", string_of_int i) ]
          done));
  let str = Json.to_string (Trace.to_chrome_json ()) in
  let v = Json.parse str in
  let events =
    match Json.member "traceEvents" v with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "missing traceEvents"
  in
  Alcotest.(check int) "2 spans + 3 instants" 5 (List.length events);
  List.iter
    (fun e ->
      checkb "has name" (Json.member "name" e <> None);
      checkb "has ts" (match Json.member "ts" e with Some (Json.Num _) -> true | _ -> false);
      match Json.member "ph" e with
      | Some (Json.Str "X") ->
          checkb "complete event has dur"
            (match Json.member "dur" e with Some (Json.Num d) -> d >= 0. | _ -> false)
      | Some (Json.Str "i") -> ()
      | _ -> Alcotest.fail "unexpected phase")
    events;
  (* the tricky attribute survived escaping and reparsing *)
  let compile_ev =
    List.find (fun e -> Json.member "name" e = Some (Json.Str "compile")) events
  in
  match Json.member "args" compile_ev with
  | Some args ->
      Alcotest.(check (option string)) "attr preserved" (Some "cuda \"quoted\"\n")
        (Option.bind (Json.member "target" args) Json.to_string_opt)
  | None -> Alcotest.fail "missing args"

(* ---- metrics ---- *)

let test_metrics_registry () =
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.incr "c" ~by:2.;
  Metrics.set_gauge "g" 1.5;
  Metrics.set_gauge "g" 2.5;
  Alcotest.(check (option (float 1e-9))) "counter" (Some 3.) (Metrics.get "c");
  Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 2.5) (Metrics.get "g");
  checkb "kind mismatch rejected"
    (match Metrics.incr "g" with exception Invalid_argument _ -> true | _ -> false);
  let j = Metrics.to_json () in
  let reparsed = Json.parse (Json.to_string j) in
  checkb "counters in json"
    (Option.bind (Json.member "counters" reparsed) (Json.member "c")
    = Some (Json.Num 3.));
  let text = Metrics.dump_text () in
  checkb "text dump mentions gauge" (contains text "gauge")

let test_histogram_percentiles () =
  Metrics.reset ();
  (* 1..1000 ms-scale values: exact median 0.5005 s *)
  for i = 1 to 1000 do
    Metrics.observe "h" (Float.of_int i /. 1000.)
  done;
  Alcotest.(check (option (float 1e-9))) "count" (Some 1000.) (Metrics.get "h");
  let p50 = Option.get (Metrics.percentile "h" 50.) in
  let p99 = Option.get (Metrics.percentile "h" 99.) in
  (* log-bucket resolution is a factor of 10^(1/8) ≈ 1.33: assert the
     estimate lands within one bucket of truth, generously *)
  checkb (Printf.sprintf "p50 ≈ 0.5 (got %g)" p50) (p50 > 0.3 && p50 < 0.8);
  checkb (Printf.sprintf "p99 ≈ 0.99 (got %g)" p99) (p99 > 0.7 && p99 <= 1.0);
  checkb "p0 clamps to min" (Option.get (Metrics.percentile "h" 0.) >= 0.001);
  checkb "p100 clamps to max" (Option.get (Metrics.percentile "h" 100.) <= 1.0);
  (* non-finite observations are dropped, not crashed on *)
  Metrics.observe "h" Float.infinity;
  Alcotest.(check (option (float 1e-9))) "inf dropped" (Some 1000.) (Metrics.get "h")

(* ---- profile report ---- *)

let test_profile_report () =
  let records =
    [
      { Profile.pr_name = "conv"; pr_group = 0; pr_calls = 2; pr_time_s = 2e-3;
        pr_launch_s = 1e-5; pr_bytes = 1e6; pr_flops = 1e9 };
      { Profile.pr_name = "dense"; pr_group = 1; pr_calls = 2; pr_time_s = 1e-3;
        pr_launch_s = 1e-5; pr_bytes = 2e5; pr_flops = 1e8 };
    ]
  in
  let report =
    { Profile.rp_target = "cuda"; rp_records = records; rp_total_s = 3.02e-3 }
  in
  let table = Profile.to_table report in
  checkb "table ranks conv first" (index_of table "conv" < index_of table "dense");
  let j = Json.parse (Json.to_string (Profile.to_json report)) in
  match Option.bind (Json.member "kernels" j) Json.to_list_opt with
  | Some l -> Alcotest.(check int) "2 kernels in json" 2 (List.length l)
  | None -> Alcotest.fail "missing kernels"

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "disabled mode zero cost" `Quick test_disabled_zero_cost;
    Alcotest.test_case "chrome json wellformed" `Quick test_chrome_json_wellformed;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "profile report" `Quick test_profile_report;
  ]
