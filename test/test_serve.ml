(* The tvmd service layer: the persistent store's versioned on-disk
   format (round trips bit-exact, corruption is skipped never fatal),
   Job_spec as the one job description shared by every entry point,
   warm-restart semantics (resumed tuning replays the measurement log;
   a preloaded cache never changes the journal), and the scheduler's
   deterministic weighted fair-share. *)

module Cfg = Tvm_autotune.Cfg_space
module Cache = Tvm_autotune.Compile_cache
module Tuner = Tvm_autotune.Tuner
module Store = Tvm_autotune.Store
module R = Tvm_autotune.Measure_result
module Job_spec = Tvm_spec.Job_spec

let temp_store () =
  let path = Filename.temp_file "tvmstore" ".log" in
  Sys.remove path;
  path

let with_store f =
  let path = temp_store () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Job_spec                                                             *)
(* ------------------------------------------------------------------ *)

let test_job_spec_roundtrip () =
  let specs =
    [
      Job_spec.default;
      Job_spec.make ~op:Job_spec.Compile ~workload:"resnet18" ~target:"arm"
        ~fusion:false ~trials:7 ~method_name:"random" ~seed:9 ~batch:4
        ~sa_steps:3 ~n_chains:2 ~jobs:3 ~devices:4 ~validate:true
        ~verbose:true ~use_compile_cache:false ~replay:true ~fault_rate:0.25
        ~straggler:1 ~max_retries:5 ~timeout_s:0.5 ~journal_out:"j.txt"
        ~trace_out:"t.json" ~metrics_out:"m.txt" ~tune_log:"l.jsonl" ();
      Job_spec.make ~op:Job_spec.Profile ~trials:0 ();
    ]
  in
  List.iter
    (fun spec ->
      let s = Job_spec.to_string spec in
      Alcotest.(check bool)
        "single line" false
        (String.contains s '\n');
      let spec' = Job_spec.of_string s in
      Alcotest.(check bool) "round trip" true (spec = spec'))
    specs;
  (* Missing fields take defaults: the empty object is the default spec. *)
  Alcotest.(check bool)
    "defaults fill in" true
    (Job_spec.of_string "{}" = Job_spec.default)

(* ------------------------------------------------------------------ *)
(* Store: block format                                                  *)
(* ------------------------------------------------------------------ *)

let test_store_blocks () =
  with_store @@ fun path ->
  Store.append_block path ~kind:"a" [ "one"; "two" ];
  Store.append_block path ~kind:"b" [];
  Store.append_block path ~kind:"a" [ "three" ];
  let blocks = Store.load_blocks path in
  Alcotest.(check (list (pair string (list string))))
    "blocks round trip"
    [ ("a", [ "one"; "two" ]); ("b", []); ("a", [ "three" ]) ]
    (List.map (fun b -> (b.Store.b_kind, b.Store.b_records)) blocks)

let test_store_missing_file () =
  Alcotest.(check int)
    "missing file loads empty" 0
    (List.length (Store.load_blocks "/nonexistent/tvmstore.log"))

let corrupt_byte path pos =
  let s = In_channel.with_open_bin path In_channel.input_all in
  let b = Bytes.of_string s in
  let pos = min pos (Bytes.length b - 1) in
  Bytes.set b pos (if Bytes.get b pos = 'Z' then 'Q' else 'Z');
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

let test_store_corruption_skipped () =
  with_store @@ fun path ->
  Tvm_obs.Metrics.reset ();
  Store.append_block path ~kind:"a" [ "good-1" ];
  let mid = (Unix.stat path).Unix.st_size in
  Store.append_block path ~kind:"a" [ "will-be-corrupted" ];
  Store.append_block path ~kind:"a" [ "good-2" ];
  (* Flip a byte inside the second block's record: its checksum fails,
     the neighbours survive, nothing raises. *)
  corrupt_byte path (mid + 60);
  let blocks = Store.load_blocks path in
  Alcotest.(check (list string))
    "corrupt block skipped, neighbours kept"
    [ "good-1"; "good-2" ]
    (List.concat_map (fun b -> b.Store.b_records) blocks);
  Alcotest.(check bool)
    "rejection counted" true
    (Option.value ~default:0. (Tvm_obs.Metrics.get "cache.load_rejected") >= 1.);
  (* A truncated tail (death mid-flush) is also just skipped. *)
  let s = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub s 0 (String.length s - 4)));
  let blocks = Store.load_blocks path in
  (* good-1 survives; the corrupted middle and the truncated tail don't. *)
  Alcotest.(check int) "truncated tail dropped" 1 (List.length blocks)

let test_store_version_gate () =
  with_store @@ fun path ->
  let oc = open_out path in
  output_string oc "#tvmstore v99 kind=a records=1 checksum=0\nfuture\n";
  close_out oc;
  Store.append_block path ~kind:"a" [ "present" ];
  let blocks = Store.load_blocks path in
  Alcotest.(check (list string))
    "unknown version skipped" [ "present" ]
    (List.concat_map (fun b -> b.Store.b_records) blocks)

(* ------------------------------------------------------------------ *)
(* Store: typed round trips                                             *)
(* ------------------------------------------------------------------ *)

let test_store_db_roundtrip () =
  with_store @@ fun path ->
  let db = Tuner.Db.create () in
  Tuner.Db.add db "conv(1x3x8x8)@cuda"
    [ ("tile_x", 2); ("tile_y", 3) ]
    (R.ok ~attempts:2 1.5e-3);
  Tuner.Db.add db "k2" [ ("a", 1) ] (R.fail (R.Pool_error "no\tdevice left"));
  let hw = Store.flush_db path ~from:0 db in
  Alcotest.(check int) "high-water after first flush" 2 hw;
  (* Incremental: a second flush writes only the new records. *)
  Tuner.Db.add db "k2" [ ("a", 2) ] (R.fail ~attempts:3 R.Timeout);
  let hw = Store.flush_db path ~from:hw db in
  Alcotest.(check int) "high-water advances" 3 hw;
  Alcotest.(check int) "no-op flush writes nothing" 3
    (Store.flush_db path ~from:hw db);
  let db' = Tuner.Db.create () in
  let n = Store.load_db path ~into:db' in
  Alcotest.(check int) "all records load" 3 n;
  (* Records replay in order with bit-exact times and full status. *)
  Alcotest.(check bool)
    "records identical" true
    (Tuner.Db.records db = Tuner.Db.records db');
  (match Tuner.Db.find db' "k2" [ ("a", 1) ] with
  | Some { R.status = R.Pool_error m; _ } ->
      Alcotest.(check string) "pool_error message survives tabs" "no\tdevice left" m
  | _ -> Alcotest.fail "pool_error record lost")

let test_store_tuned_roundtrip () =
  with_store @@ fun path ->
  let entries =
    [
      ("conv2d(1x3x8x8,16x3x3x3)->1x16x8x8@cuda", [ ("t", 8); ("u", 1) ], 1e-4);
      ("dense(64x64)->64x64@llvm", [ ("t", 4) ], 0x1.5p-10);
    ]
  in
  Store.append_tuned path entries;
  Alcotest.(check bool)
    "tuned entries round trip" true
    (Store.load_tuned path = entries)

let test_store_cache_roundtrip () =
  with_store @@ fun path ->
  let c = Cache.create () in
  Cache.add c [ ("x", 1) ]
    (Cache.Valid { feats = [| 1.5; 0.1; Float.pi; 0. |]; stmt = None });
  Cache.add c [ ("x", 2) ] Cache.Invalid;
  ignore (Store.save_cache path ~scope:"conv@cuda|fusion=true" c);
  let c' = Cache.create () in
  let n = Store.load_cache path ~scope:"conv@cuda|fusion=true" ~into:c' in
  Alcotest.(check int) "entries load" 2 n;
  Alcotest.(check int) "other scope loads nothing" 0
    (Store.load_cache path ~scope:"other" ~into:(Cache.create ()));
  (match Cache.find ~record:false c' [ ("x", 1) ] with
  | Some (Cache.Valid { feats; stmt }) ->
      Alcotest.(check bool)
        "features bit-exact" true
        (feats = [| 1.5; 0.1; Float.pi; 0. |]);
      Alcotest.(check bool) "programs are not serialized" true (stmt = None)
  | _ -> Alcotest.fail "valid entry lost");
  Alcotest.(check bool)
    "invalid verdict survives" true
    (Cache.find ~record:false c' [ ("x", 2) ] = Some Cache.Invalid)

(* ------------------------------------------------------------------ *)
(* Warm restart                                                         *)
(* ------------------------------------------------------------------ *)

module Templates = Tvm_autotune.Templates
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
module DPool = Tvm_rpc.Device_pool
module Machine = Tvm_sim.Machine
module Par = Tvm_par.Pool
module Journal = Tvm_obs.Journal
module Metrics = Tvm_obs.Metrics

let serve_template =
  lazy
    (let d = Tensor.placeholder "srv_d" (List.map Tvm_tir.Expr.int [ 1; 16; 8; 8 ]) in
     let w = Tensor.placeholder "srv_w" (List.map Tvm_tir.Expr.int [ 16; 16; 3; 3 ]) in
     let c = Op.conv2d ~name:"srv_conv" ~stride:1 d w in
     Templates.gpu_flat ~name:"srv_tpl" c)

let tune_once ?db ?cache ?(replay = false) ~pool () =
  let par = Par.create ~domains:2 () in
  let measure = DPool.measure_fn pool ~kind_pred:(fun _ -> true) in
  let measure_batch = DPool.batch_measure_fn ~par pool ~kind_pred:(fun _ -> true) in
  Tuner.tune
    ~spec:(Job_spec.make ~seed:11 ~jobs:2 ~replay ())
    ?db ?cache ~measure_batch ~method_:Tuner.Ml_model ~measure ~n_trials:24
    (Lazy.force serve_template)

let fresh_pool () =
  DPool.create (List.init 2 (fun _ -> DPool.Gpu_dev Machine.titan_x))

(* A compile cache preloaded from the store must not change a run's
   journal by a single byte: prepare verdicts are run-local, so a warm
   process reports the same miss/hit sequence a cold one does. *)
let test_warm_cache_journal_identity () =
  with_store @@ fun path ->
  let journaled_tune ~cache () =
    Journal.set_enabled false;
    Journal.set_enabled true;
    Metrics.reset ();
    let r = tune_once ~cache ~pool:(fresh_pool ()) () in
    let j = Journal.to_jsonl () in
    let hits = Option.value ~default:0. (Metrics.get "cache.miss") in
    Journal.set_enabled false;
    (r, j, hits)
  in
  let c1 = Cache.create () in
  let r_cold, j_cold, miss_cold = journaled_tune ~cache:c1 () in
  ignore (Store.save_cache path ~scope:"srv" c1);
  let c2 = Cache.create () in
  ignore (Store.load_cache path ~scope:"srv" ~into:c2);
  let r_warm, j_warm, miss_warm = journaled_tune ~cache:c2 () in

  Alcotest.(check string) "journal byte-identical warm vs cold" j_cold j_warm;
  Alcotest.(check bool)
    "same best" true
    (r_cold.Tuner.best_time = r_warm.Tuner.best_time
    && Cfg.canonical r_cold.Tuner.best_config
       = Cfg.canonical r_warm.Tuner.best_config);
  (* The preloaded cache was actually consulted: a warm process
     re-lowers (and so misses) strictly less than a cold one. *)
  Alcotest.(check bool)
    "preloaded cache cuts misses" true (miss_warm < miss_cold)

(* Resuming from a persisted measurement log replays recorded results
   instead of re-dispatching: identical trial history and winner, no
   duplicate records, (almost) no device-pool work. *)
let test_replay_resume () =
  with_store @@ fun path ->
  Metrics.reset ();
  let db = Tuner.Db.create () in
  let cache = Cache.create () in
  let pool1 = fresh_pool () in
  let r1 = tune_once ~db ~cache ~pool:pool1 () in
  let hw = Store.flush_db path ~from:0 db in
  ignore (Store.save_cache path ~scope:"srv" cache);
  (* Simulated restart: fresh Db, cache and fleet, state loaded from
     disk only. *)
  let db2 = Tuner.Db.create () in
  let cache2 = Cache.create () in
  Alcotest.(check int) "all records reload" hw (Store.load_db path ~into:db2);
  ignore (Store.load_cache path ~scope:"srv" ~into:cache2);
  let ok_before = Tuner.Db.status_count db2 "ok" in
  Metrics.reset ();
  let pool2 = fresh_pool () in
  let r2 = tune_once ~db:db2 ~cache:cache2 ~replay:true ~pool:pool2 () in
  Alcotest.(check bool)
    "trial history identical to the uninterrupted run" true
    (r1.Tuner.history = r2.Tuner.history);
  Alcotest.(check bool)
    "same winner" true
    (r1.Tuner.best_time = r2.Tuner.best_time);
  Alcotest.(check bool)
    "replayed trials counted" true
    (Option.value ~default:0. (Metrics.get "tuner.replayed") > 0.);
  Alcotest.(check bool)
    "replay dispatches less pool work" true
    (pool2.DPool.total_jobs < pool1.DPool.total_jobs);
  Alcotest.(check int)
    "no duplicate successful records" ok_before
    (Tuner.Db.status_count db2 "ok")

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

module Sched = Tvm_serve.Scheduler
module Tvmd = Tvm_serve.Tvmd

let mk_job ?(tenant = "t") ?(priority = 0) ?(submit = 0.) id =
  {
    Sched.jb_id = id;
    jb_tenant = tenant;
    jb_priority = priority;
    jb_submit_s = submit;
    jb_payload = ();
  }

(* Weighted fair share: with both tenants backlogged, a 2:1 weight
   split yields a 2:1 device-time split over the busy interval — and
   the whole schedule is a pure function of the trace. *)
let test_scheduler_fairness () =
  let jobs =
    List.init 60 (fun i ->
        mk_job ~tenant:(if i mod 2 = 0 then "alpha" else "beta") i)
  in
  let tenants =
    [ Sched.tenant ~weight:2. "alpha"; Sched.tenant ~weight:1. "beta" ]
  in
  let execute _job ~attempt:_ = Ok 1.0 in
  let run () = Sched.run ~slots:3 ~tenants ~execute jobs in
  let cs = run () in
  Alcotest.(check int) "all jobs complete" 60 (List.length cs);
  (* Busy interval: alpha's 30 jobs at rate 2/s last until t=15, and
     beta stays backlogged throughout. *)
  let horizon = 15. in
  let service tenant =
    List.fold_left
      (fun acc (c : unit Sched.completion) ->
        if
          c.Sched.cp_finish_s <= horizon
          && c.Sched.cp_job.Sched.jb_tenant = tenant
        then acc +. c.Sched.cp_service_s
        else acc)
      0. cs
  in
  let ratio = service "alpha" /. service "beta" in
  Alcotest.(check bool)
    (Printf.sprintf "device time split ~2:1 (got %.2f)" ratio)
    true
    (ratio > 1.7 && ratio < 2.4);
  Alcotest.(check bool) "schedule deterministic" true (cs = run ())

let test_scheduler_policies () =
  let ok1 _job ~attempt:_ = Ok 1.0 in
  (* Priorities dominate FIFO within a tenant. *)
  (match
     Sched.run ~slots:1
       ~tenants:[ Sched.tenant "t" ]
       ~execute:ok1
       [ mk_job 0; mk_job ~priority:5 1 ]
   with
  | [ c1; c2 ] ->
      Alcotest.(check int) "high priority first" 1 c1.Sched.cp_job.Sched.jb_id;
      Alcotest.(check int) "then FIFO" 0 c2.Sched.cp_job.Sched.jb_id
  | _ -> Alcotest.fail "expected 2 completions");
  (* A quota of 1 serializes a tenant even on an idle fleet. *)
  let cs =
    Sched.run ~slots:4
      ~tenants:[ Sched.tenant ~quota:1 "t" ]
      ~execute:ok1
      (List.init 4 (fun i -> mk_job i))
  in
  List.iteri
    (fun i (c : unit Sched.completion) ->
      Alcotest.(check (float 1e-9))
        "quota serializes" (float_of_int i) c.Sched.cp_start_s)
    (List.sort
       (fun (a : unit Sched.completion) b ->
         compare a.Sched.cp_start_s b.Sched.cp_start_s)
       cs);
  (* Retries: a crashed attempt charges its cost plus backoff, then
     the job still succeeds. *)
  let retry = Tvm_rpc.Retry_policy.default in
  let execute _job ~attempt = if attempt = 0 then Error "boom" else Ok 0.5 in
  (match
     Sched.run ~slots:1 ~retry ~tenants:[ Sched.tenant "t" ] ~execute
       [ mk_job 0 ]
   with
  | [ c ] ->
      Alcotest.(check int) "two attempts" 2 c.Sched.cp_attempts;
      Alcotest.(check bool) "recovered" true (c.Sched.cp_error = None);
      let expect =
        1.0 +. Tvm_rpc.Retry_policy.backoff_s retry ~attempt:0 +. 0.5
      in
      Alcotest.(check (float 1e-9))
        "service charges crash + backoff + rerun" expect c.Sched.cp_service_s
  | _ -> Alcotest.fail "expected 1 completion");
  (* Exhausted retries surface as cp_error — the scheduler never
     raises on a failing job. *)
  match
    Sched.run ~slots:1 ~retry
      ~tenants:[ Sched.tenant "t" ]
      ~execute:(fun _ ~attempt:_ -> Error "dead")
      [ mk_job 0 ]
  with
  | [ c ] ->
      Alcotest.(check bool) "failed after retries" true (c.Sched.cp_error <> None);
      Alcotest.(check int)
        "attempts exhausted"
        (retry.Tvm_rpc.Retry_policy.max_retries + 1)
        c.Sched.cp_attempts
  | _ -> Alcotest.fail "expected 1 completion"

(* ------------------------------------------------------------------ *)
(* tvmd                                                                 *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  let r =
    Tvmd.request ~tenant:"alpha" ~weight:2. ~quota:3 ~priority:1
      ~submit_s:0.25 ~share:true
      (Job_spec.make ~op:Job_spec.Tune ~workload:"C1" ~trials:8
         ~method_name:"random" ~jobs:2 ())
  in
  let s = Tvmd.to_string r in
  Alcotest.(check bool) "single line" false (String.contains s '\n');
  Alcotest.(check bool) "envelope round trips" true (Tvmd.of_string s = r);
  let d = Tvmd.of_string "{}" in
  Alcotest.(check bool)
    "defaults fill in" true
    (d.Tvmd.rq_tenant = "default" && d.Tvmd.rq_weight = 1.
    && d.Tvmd.rq_quota = None && d.Tvmd.rq_share = false
    && d.Tvmd.rq_spec = Job_spec.default)

(* The restart contract: kill tvmd mid-trace, restart on the same
   store, and the final results file is byte-identical to an
   uninterrupted run — done jobs are answered from their recorded
   service times, pending ones resume from the persisted trial log. *)
let test_tvmd_restart () =
  let tune_spec ?(seed = 42) workload =
    Job_spec.make ~op:Job_spec.Tune ~workload ~trials:8 ~method_name:"random"
      ~seed ~jobs:2 ()
  in
  let trace =
    [
      Tvmd.request ~tenant:"alpha" ~weight:2. ~submit_s:0. (tune_spec "C1");
      Tvmd.request ~tenant:"beta" ~submit_s:0. (tune_spec "C2");
      Tvmd.request ~tenant:"alpha" ~weight:2. ~submit_s:0.1 (tune_spec "C1");
      Tvmd.request ~tenant:"gamma" ~submit_s:0.2 (tune_spec ~seed:7 "C1");
    ]
  in
  with_store @@ fun s1 ->
  with_store @@ fun s2 ->
  Metrics.reset ();
  let full = Tvmd.serve ~slots:2 ~store:s1 trace in
  Alcotest.(check int) "cold run executes everything" 4 full.Tvmd.oc_executed;
  Alcotest.(check int) "no failures" 0 full.Tvmd.oc_failed;
  Alcotest.(check int) "one line per job" 4 (List.length full.Tvmd.oc_lines);
  Alcotest.(check bool)
    "queue-wait histogram populated" true
    (Metrics.get "tvmd.queue_wait_s" <> None);
  (* Kill after two live completions, restart on the same store. *)
  let partial = Tvmd.serve ~slots:2 ~store:s2 ~max_jobs:2 trace in
  Alcotest.(check int) "kill switch stops at 2" 2 partial.Tvmd.oc_executed;
  let resumed = Tvmd.serve ~slots:2 ~store:s2 trace in
  Alcotest.(check int) "restart restores done jobs" 2 resumed.Tvmd.oc_restored;
  Alcotest.(check int) "restart finishes the rest" 2 resumed.Tvmd.oc_executed;
  Alcotest.(check (list string))
    "results byte-identical across kill/restart" full.Tvmd.oc_lines
    resumed.Tvmd.oc_lines;
  (* A warm rerun of the identical trace touches no device at all. *)
  let warm = Tvmd.serve ~slots:2 ~store:s1 trace in
  Alcotest.(check int) "warm rerun executes nothing" 0 warm.Tvmd.oc_executed;
  Alcotest.(check int) "warm rerun all restored" 4 warm.Tvmd.oc_restored;
  Alcotest.(check (list string))
    "warm results identical" full.Tvmd.oc_lines warm.Tvmd.oc_lines

(* The dispatch loop must prune its in-flight bookkeeping as the
   virtual clock passes each finish — a long stream may never
   accumulate per-job state. 10k jobs across 4 tenants at 4 slots: the
   in-flight peak is the slot count, not the stream length. *)
let test_scheduler_bounded_state () =
  Metrics.reset ();
  let n = 10_000 in
  let jobs =
    List.init n (fun i ->
        {
          Sched.jb_id = i;
          jb_tenant = Printf.sprintf "t%d" (i mod 4);
          jb_priority = i mod 3;
          jb_submit_s = float_of_int i /. 10.;
          jb_payload = ();
        })
  in
  let tenants = List.init 4 (fun i -> Sched.tenant (Printf.sprintf "t%d" i)) in
  let cs =
    Sched.run ~slots:4 ~tenants ~execute:(fun _ ~attempt:_ -> Ok 1.0) jobs
  in
  Alcotest.(check int) "all complete" n (List.length cs);
  let peak =
    Option.value ~default:infinity (Metrics.get "sched.running_peak")
  in
  Alcotest.(check bool)
    (Printf.sprintf "in-flight state bounded by slots (peak %.0f)" peak)
    true (peak <= 4.)

(* Compaction: superseded records drop per rule, unruled kinds keep
   everything, and a crash at any injected point — mid-write or just
   before the atomic rename — leaves the original store intact. *)
let test_store_compaction () =
  with_store @@ fun path ->
  let rules =
    [
      {
        Store.rl_kind = "first";
        rl_scoped = false;
        rl_keep = Store.First_per_key;
      };
      { Store.rl_kind = "last"; rl_scoped = false; rl_keep = Store.Last_per_key };
    ]
  in
  Store.append_block path ~kind:"first" [ "k1\tv1"; "k2\tv1" ];
  Store.append_block path ~kind:"raw" [ "r1"; "r2" ];
  Store.append_block path ~kind:"first" [ "k1\tv2"; "k3\tv1" ];
  Store.append_block path ~kind:"last" [ "a\t1"; "b\t1" ];
  Store.append_block path ~kind:"last" [ "a\t2" ];
  Store.append_block path ~kind:"raw" [ "r3" ];
  let before = In_channel.with_open_bin path In_channel.input_all in
  (try
     ignore (Store.compact ~rules ~crash_after_bytes:8 path);
     Alcotest.fail "expected injected crash"
   with Store.Injected_crash -> ());
  Alcotest.(check string) "crash mid-write loses nothing" before
    (In_channel.with_open_bin path In_channel.input_all);
  (try
     ignore (Store.compact ~rules ~crash_before_rename:true path);
     Alcotest.fail "expected injected crash"
   with Store.Injected_crash -> ());
  Alcotest.(check string) "crash before rename loses nothing" before
    (In_channel.with_open_bin path In_channel.input_all);
  (* Below the size threshold nothing happens at all. *)
  Alcotest.(check bool)
    "below threshold: untouched" true
    (Store.compact ~rules ~threshold_bytes:1_000_000 path = None);
  (* The real pass shrinks the file to exactly the live records. *)
  (match Store.compact ~rules path with
  | None -> Alcotest.fail "compaction skipped"
  | Some (b, a) ->
      Alcotest.(check int) "before is the old size" (String.length before) b;
      Alcotest.(check bool) "shrinks" true (a < b));
  let records kind =
    Store.load_blocks path
    |> List.filter (fun b -> b.Store.b_kind = kind)
    |> List.concat_map (fun b -> b.Store.b_records)
  in
  Alcotest.(check (list string))
    "first-wins dedup"
    [ "k1\tv1"; "k2\tv1"; "k3\tv1" ]
    (records "first");
  Alcotest.(check (list string))
    "last-wins dedup" [ "b\t1"; "a\t2" ] (records "last");
  Alcotest.(check (list string))
    "unruled kinds keep every record" [ "r1"; "r2"; "r3" ] (records "raw");
  (* Idempotent: a second pass finds nothing left to drop. *)
  match Store.compact ~rules path with
  | None -> Alcotest.fail "second pass skipped"
  | Some (b2, a2) -> Alcotest.(check int) "idempotent" b2 a2

(* The streaming spool must be just another way of feeding the same
   deterministic service: a drained batch produces the exact lines a
   one-shot jobs-file run over the same envelopes does, consumed files
   move to the archive, and malformed lines are skipped not fatal. *)
let test_tvmd_spool () =
  let dir = Filename.temp_file "tvmspool" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then (
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p)
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) @@ fun () ->
  let tune_spec workload =
    Job_spec.make ~op:Job_spec.Tune ~workload ~trials:8 ~method_name:"random"
      ~jobs:2 ()
  in
  let trace =
    [
      Tvmd.request ~tenant:"alpha" ~weight:2. ~submit_s:0. (tune_spec "C1");
      Tvmd.request ~tenant:"beta" ~submit_s:0.1 (tune_spec "C2");
    ]
  in
  Out_channel.with_open_text (Filename.concat dir "00-a.req") (fun oc ->
      output_string oc (Tvmd.to_string (List.nth trace 0) ^ "\n"));
  Out_channel.with_open_text (Filename.concat dir "01-b.req") (fun oc ->
      output_string oc (Tvmd.to_string (List.nth trace 1) ^ "\n");
      output_string oc "this is not an envelope\n");
  (* Stop file pre-armed: the loop serves the pending batch, sees the
     drained spool, and exits. *)
  Out_channel.with_open_text (Filename.concat dir "stop") ignore;
  let outcomes = ref [] in
  let batches =
    Tvmd.serve_spool ~slots:2 ~dir
      ~on_batch:(fun _ o -> outcomes := o :: !outcomes)
      ()
  in
  Alcotest.(check int) "one batch" 1 batches;
  let spooled =
    match !outcomes with [ o ] -> o | _ -> Alcotest.fail "one outcome"
  in
  Alcotest.(check int) "malformed line skipped, jobs served" 2
    (List.length spooled.Tvmd.oc_lines);
  let direct = Tvmd.serve ~slots:2 trace in
  Alcotest.(check (list string))
    "spool batch identical to jobs-file run" direct.Tvmd.oc_lines
    spooled.Tvmd.oc_lines;
  let left = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check (list string)) "spool dir drained" [ "archive"; "stop" ] left;
  let archived =
    Sys.readdir (Filename.concat dir "archive")
    |> Array.to_list |> List.sort compare
  in
  Alcotest.(check (list string))
    "envelopes archived" [ "00-a.req"; "01-b.req" ] archived

(* Tenant isolation: private scopes never share tuning state — two
   tenants compiling the same network each pay the full tuning cost;
   opting into the shared scope lets the second ride the first's tuned
   configurations. *)
let test_tvmd_isolation () =
  let spec =
    Job_spec.make ~op:Job_spec.Compile ~workload:"dqn" ~trials:4
      ~method_name:"random" ~jobs:2 ()
  in
  let service (o : Tvmd.outcome) id =
    List.find_map
      (fun (c : Tvmd.request Sched.completion) ->
        if c.Sched.cp_job.Sched.jb_id = id then Some c.Sched.cp_service_s
        else None)
      o.Tvmd.oc_completions
    |> Option.get
  in
  let trace share =
    [
      Tvmd.request ~tenant:"alpha" ~submit_s:0. ~share spec;
      Tvmd.request ~tenant:"beta" ~submit_s:0. ~share spec;
    ]
  in
  let private_ = Tvmd.serve ~slots:2 (trace false) in
  Alcotest.(check int) "both tenants execute" 2 private_.Tvmd.oc_executed;
  Alcotest.(check (float 1e-9))
    "private scopes: both pay full tuning" (service private_ 0)
    (service private_ 1);
  let shared = Tvmd.serve ~slots:2 (trace true) in
  Alcotest.(check bool)
    (Printf.sprintf "shared scope: second compile rides the first (%.3f vs %.3f)"
       (service shared 1) (service shared 0))
    true
    (service shared 1 < service shared 0 /. 2.)

let suite =
  [
    Alcotest.test_case "Job_spec JSON round trip" `Quick test_job_spec_roundtrip;
    Alcotest.test_case "store blocks round trip" `Quick test_store_blocks;
    Alcotest.test_case "store missing file loads empty" `Quick
      test_store_missing_file;
    Alcotest.test_case "store corruption skipped, never fatal" `Quick
      test_store_corruption_skipped;
    Alcotest.test_case "store unknown version skipped" `Quick
      test_store_version_gate;
    Alcotest.test_case "Db flush/load round trip (incremental)" `Quick
      test_store_db_roundtrip;
    Alcotest.test_case "tuned-cache entries round trip" `Quick
      test_store_tuned_roundtrip;
    Alcotest.test_case "compile-cache entries round trip" `Quick
      test_store_cache_roundtrip;
    Alcotest.test_case "warm cache: journal byte-identical" `Slow
      test_warm_cache_journal_identity;
    Alcotest.test_case "replay resume: history identical, no re-dispatch" `Slow
      test_replay_resume;
    Alcotest.test_case "scheduler: weighted fair share 2:1" `Quick
      test_scheduler_fairness;
    Alcotest.test_case "scheduler: priorities, quotas, retries" `Quick
      test_scheduler_policies;
    Alcotest.test_case "tvmd request envelope round trip" `Quick
      test_request_roundtrip;
    Alcotest.test_case "tvmd kill/restart: byte-identical results" `Slow
      test_tvmd_restart;
    Alcotest.test_case "scheduler: in-flight state bounded on 10k-job stream"
      `Quick test_scheduler_bounded_state;
    Alcotest.test_case "store compaction: rules, crash safety, idempotence"
      `Quick test_store_compaction;
    Alcotest.test_case "tvmd spool: identical to jobs-file, archive, drain"
      `Slow test_tvmd_spool;
    Alcotest.test_case "tvmd tenant isolation vs shared scope" `Slow
      test_tvmd_isolation;
  ]
