(* Memory-planner tests: the pooled assignment must never share a slot
   between values whose live ranges overlap, and pooling can only help
   (pooled ≤ naive) — checked across every Table-2 workload wrapped in
   a conv+epilogue graph and every full model, under both fusion modes.
   Plus the serving-time slab arena: bounded-fit reuse, footprint and
   peak accounting, determinism. *)

module G = Tvm_graph.Graph_ir
module Attrs = Tvm_graph.Attrs
module Fusion = Tvm_graph.Fusion
module Mem_plan = Tvm_graph.Mem_plan
module Models = Tvm_models.Models
module Workloads = Tvm_models.Workloads
open Test_helpers

let () = Tvm_graph.Std_ops.register_all ()

(* A Table-2 conv wrapped with enough structure to exercise the planner:
   conv → bn → relu → pool, so fused and unfused partitions differ. *)
let graph_of_workload (w : Workloads.conv) =
  let b = G.builder () in
  let data = G.input b "data" [ 1; w.Workloads.ic; w.Workloads.hw; w.Workloads.hw ] in
  let weight =
    if w.Workloads.depthwise then
      G.param b "w" [ w.Workloads.ic; 1; w.Workloads.kernel; w.Workloads.kernel ]
    else
      G.param b "w"
        [ w.Workloads.oc; w.Workloads.ic; w.Workloads.kernel; w.Workloads.kernel ]
  in
  let op = if w.Workloads.depthwise then "depthwise_conv2d" else "conv2d" in
  let conv =
    G.op b op ~name:w.Workloads.name
      ~attrs:[ ("stride", Attrs.Int w.Workloads.stride); ("padding", Attrs.Str "same") ]
      [ data; weight ]
  in
  let scale = G.param b "sc" [ w.Workloads.oc ] in
  let shift = G.param b "sh" [ w.Workloads.oc ] in
  let bn = G.op b "batch_norm" [ conv; scale; shift ] in
  let relu = G.op b "relu" [ bn ] in
  let pool =
    G.op b "max_pool2d" ~attrs:[ ("pool", Attrs.Int 2); ("stride", Attrs.Int 2) ]
      [ relu ]
  in
  G.finalize b [ pool ]

let all_graphs () =
  List.map (fun (w : Workloads.conv) -> (w.Workloads.name, graph_of_workload w))
    Workloads.all
  @ Models.serving_suite ()

(* Recompute live ranges independently of the planner. A group output
   is live from its producing step to the last step reading it; graph
   outputs are pinned forever. *)
let live_ranges graph groups =
  let step_of = Hashtbl.create 16 in
  List.iteri (fun i (g : Fusion.group) -> Hashtbl.replace step_of g.Fusion.g_output i) groups;
  List.mapi
    (fun step (g : Fusion.group) ->
      let id = g.Fusion.g_output in
      let last =
        if G.is_output graph id then max_int
        else
          List.fold_left
            (fun acc (r : Fusion.group) ->
              if List.mem id r.Fusion.g_inputs then
                max acc (Hashtbl.find step_of r.Fusion.g_output)
              else acc)
            step groups
      in
      (id, step, last))
    groups

let check_plan name graph groups =
  let p = Mem_plan.plan graph groups in
  let ranges = live_ranges graph groups in
  (* Every group output gets a slot, every slot fits its tenants. *)
  List.iter
    (fun (id, _, _) ->
      let slot =
        match List.assoc_opt id p.Mem_plan.assignments with
        | Some s -> s
        | None -> Alcotest.failf "%s: node %d unassigned" name id
      in
      let bytes = List.assoc slot p.Mem_plan.slots in
      checkb
        (Printf.sprintf "%s: node %d fits slot %d" name id slot)
        (bytes >= Mem_plan.node_bytes graph id))
    ranges;
  (* No two overlapping live ranges share a slot. *)
  List.iter
    (fun (a, sa, ea) ->
      List.iter
        (fun (b, sb, eb) ->
          if a < b then
            let slot_a = List.assoc a p.Mem_plan.assignments in
            let slot_b = List.assoc b p.Mem_plan.assignments in
            if slot_a = slot_b && sb <= ea && sa <= eb then
              Alcotest.failf
                "%s: nodes %d [%d,%d] and %d [%d,%d] overlap in slot %d" name a
                sa ea b sb eb slot_a)
        ranges)
    ranges;
  (* Pooling can only help, and the totals are consistent. *)
  checkb
    (Printf.sprintf "%s: pooled %.0f <= naive %.0f" name p.Mem_plan.total_bytes
       p.Mem_plan.naive_bytes)
    (p.Mem_plan.total_bytes <= p.Mem_plan.naive_bytes +. 1e-6);
  let sum = List.fold_left (fun acc (_, b) -> acc +. b) 0. p.Mem_plan.slots in
  checkb (name ^ ": total = sum of slots") (Float.abs (sum -. p.Mem_plan.total_bytes) < 1e-6)

let test_no_overlap_all_graphs () =
  List.iter
    (fun (name, graph) ->
      check_plan (name ^ "/fused") graph (Fusion.fuse graph);
      check_plan (name ^ "/unfused") graph (Fusion.no_fusion graph))
    (all_graphs ())

let test_pooling_strictly_helps_on_models () =
  (* On every real model the planner must actually reuse storage, not
     just break even. *)
  List.iter
    (fun (name, graph) ->
      let p = Mem_plan.plan graph (Fusion.fuse graph) in
      checkb (name ^ ": pooling reuses storage")
        (p.Mem_plan.total_bytes < p.Mem_plan.naive_bytes))
    (Models.serving_suite ())

(* ---- slab arena ---- *)

module Arena = Mem_plan.Arena

let test_arena_reuse () =
  let a = Arena.create () in
  let s1 = Arena.acquire a ~bytes:100_000. in
  let fp1 = Arena.footprint_bytes a in
  Arena.release a s1;
  let s2 = Arena.acquire a ~bytes:100_000. in
  Alcotest.(check int) "same slab reused" s1.Arena.sb_id s2.Arena.sb_id;
  checkb "footprint unchanged on reuse" (Arena.footprint_bytes a = fp1);
  Alcotest.(check int) "one reuse" 1 (Arena.reuses a);
  (* A same-class smaller request may borrow it too. *)
  Arena.release a s2;
  let s3 = Arena.acquire a ~bytes:90_000. in
  Alcotest.(check int) "borrowed one class down" s1.Arena.sb_id s3.Arena.sb_id

let test_arena_no_capture () =
  (* A free slab far larger than the request must NOT be captured:
     bounded-fit allocates a fresh small slab instead. *)
  let a = Arena.create () in
  let big = Arena.acquire a ~bytes:10_000_000. in
  Arena.release a big;
  let small = Arena.acquire a ~bytes:8_192. in
  checkb "big slab not captured by small request"
    (small.Arena.sb_id <> big.Arena.sb_id);
  checkb "small slab bounded" (small.Arena.sb_bytes < 2.5 *. 8_192.)

let arena_invariants =
  QCheck.Test.make ~name:"arena invariants under random acquire/release"
    ~count:200
    QCheck.(list (pair bool (int_range 1 2_000_000)))
    (fun script ->
      let a = Arena.create () in
      let held = ref [] in
      List.iter
        (fun (do_release, bytes) ->
          if do_release && !held <> [] then begin
            let s = List.hd !held in
            held := List.tl !held;
            Arena.release a s
          end
          else begin
            let b = float_of_int bytes in
            let s = Arena.acquire a ~bytes:b in
            (* Served slab fits and is within the bounded-fit factor. *)
            if s.Arena.sb_bytes < b then QCheck.Test.fail_report "slab too small";
            if s.Arena.sb_bytes > 2.45 *. Float.max 4096. b then
              QCheck.Test.fail_report "bounded fit violated";
            held := s :: !held
          end)
        script;
      let in_use = List.fold_left (fun acc s -> acc +. s.Arena.sb_bytes) 0. !held in
      (* Footprint covers the peak, and live bytes never exceed either. *)
      Arena.peak_in_use_bytes a >= in_use -. 1e-6
      && Arena.footprint_bytes a >= Arena.peak_in_use_bytes a -. 1e-6
      && Arena.acquires a >= Arena.reuses a)

let test_arena_deterministic () =
  (* Same acquire/release script → identical slab ids and footprint. *)
  let script a =
    let s1 = Arena.acquire a ~bytes:50_000. in
    let s2 = Arena.acquire a ~bytes:120_000. in
    Arena.release a s1;
    let s3 = Arena.acquire a ~bytes:48_000. in
    let s4 = Arena.acquire a ~bytes:120_000. in
    Arena.release a s2;
    Arena.release a s3;
    Arena.release a s4;
    let s5 = Arena.acquire a ~bytes:120_000. in
    List.map (fun s -> s.Arena.sb_id) [ s1; s2; s3; s4; s5 ]
  in
  let a1 = Arena.create () and a2 = Arena.create () in
  Alcotest.(check (list int)) "slab ids repeat" (script a1) (script a2);
  checkb "footprints repeat" (Arena.footprint_bytes a1 = Arena.footprint_bytes a2)

let suite =
  [
    Alcotest.test_case "no live-range overlap, pooled <= naive (all graphs x both modes)"
      `Quick test_no_overlap_all_graphs;
    Alcotest.test_case "pooling strictly helps on every serving model" `Quick
      test_pooling_strictly_helps_on_models;
    Alcotest.test_case "arena: release then acquire reuses the slab" `Quick
      test_arena_reuse;
    Alcotest.test_case "arena: bounded fit never captures huge slabs" `Quick
      test_arena_no_capture;
    QCheck_alcotest.to_alcotest arena_invariants;
    Alcotest.test_case "arena: deterministic given the script" `Quick
      test_arena_deterministic;
  ]
