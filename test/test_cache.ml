(* Compile-cache and hash-consing tests: the PR-5 guarantees — cached
   lowerings are byte-identical to uncached ones with the same
   validator verdicts at any -j, the cache's memory policy (first-wins,
   stmt-fill, FIFO stmt eviction) never loses features, and interned
   TIR construction gives physically-shared nodes. *)

open Tvm_tir
module Par = Tvm_par.Pool
module Cfg = Tvm_autotune.Cfg_space
module Cache = Tvm_autotune.Compile_cache
module Tuner = Tvm_autotune.Tuner
module Templates = Tvm_autotune.Templates
module Feature = Tvm_autotune.Feature
module R = Tvm_autotune.Measure_result
module Pool = Tvm_rpc.Device_pool
module Machine = Tvm_sim.Machine
module Workloads = Tvm_models.Workloads
module Fe = Tvm_experiments.Fig_e2e
module G = Tvm_graph.Graph_ir
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
open Test_helpers

(* ------------------------------------------------------------------ *)
(* Hash-consed expression construction                                  *)
(* ------------------------------------------------------------------ *)

let test_hashcons_interning () =
  (* Equal immediates intern to one node (small ints via the pool,
     large ones and floats via the intern table)... *)
  checkb "pooled ints share" (Expr.int 5 == Expr.int 5);
  checkb "interned ints share" (Expr.int 3000 == Expr.int 3000);
  checkb "interned floats share" (Expr.float 2.5 == Expr.float 2.5);
  (* ...and so do composite nodes built from shared children. *)
  let v = Expr.var (Expr.Var.fresh "hc_x") in
  let mk () = Expr.binop Expr.Add (Expr.binop Expr.Mul v (Expr.int 7)) (Expr.int 3) in
  checkb "identical composites are physically equal" (mk () == mk ());
  checkb "structural equality agrees" (Expr.equal (mk ()) (mk ()));
  (* Distinct values must stay distinct. *)
  checkb "different constants differ"
    (not (Expr.equal (Expr.int 3000) (Expr.int 3001)));
  (* -0. and 0. are bitwise-distinct: interning must not conflate them
     (the printer distinguishes them, so conflation would change
     output). *)
  checkb "negative zero not conflated" (Expr.float 0. != Expr.float (-0.))

(* ------------------------------------------------------------------ *)
(* Compile_cache unit behavior                                          *)
(* ------------------------------------------------------------------ *)

let tiny_stmt =
  (* any real lowered program will do as a stmt payload *)
  lazy
    (let d = Tensor.placeholder "cch_d" (List.map Expr.int [ 1; 4; 4; 4 ]) in
     let w = Tensor.placeholder "cch_w" (List.map Expr.int [ 4; 4; 3; 3 ]) in
     let c = Op.conv2d ~name:"cch_conv" ~stride:1 d w in
     let tpl = Templates.gpu_flat ~name:"cch_tpl" c in
     let rng = Random.State.make [| 2 |] in
     let rec go n =
       if n = 0 then invalid_arg "no valid config for tiny_stmt"
       else
         let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
         match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
         | Some s -> s
         | None -> go (n - 1)
     in
     go 100)

let valid ?stmt feats = Cache.Valid { feats; stmt }

let test_first_wins_and_stmt_fill () =
  let s = Lazy.force tiny_stmt in
  let c = Cache.create ~name:"fw" () in
  let k = [ ("a", 1) ] in
  Cache.add c k (valid [| 1. |]);
  (* stmt-fill: a later entry with a program upgrades in place, keeping
     the stored features *)
  Cache.add c k (valid ~stmt:s [| 2. |]);
  checkb "features kept from first add"
    (Option.bind (Cache.find c k) Cache.feats = Some [| 1. |]);
  checkb "stmt filled in" (Option.is_some (Option.bind (Cache.find c k) Cache.stmt));
  (* after that, strictly first-wins *)
  Cache.add c k (valid ~stmt:s [| 3. |]);
  checkb "duplicate add ignored"
    (Option.bind (Cache.find c k) Cache.feats = Some [| 1. |]);
  (* Invalid entries are terminal *)
  let k2 = [ ("a", 2) ] in
  Cache.add c k2 Cache.Invalid;
  Cache.add c k2 (valid ~stmt:s [| 9. |]);
  checkb "invalid entry never upgraded" (Cache.find c k2 = Some Cache.Invalid);
  (* keys are canonical: knob order never splits an entry *)
  let ka = [ ("x", 1); ("y", 2) ] and kb = [ ("y", 2); ("x", 1) ] in
  Cache.add c ka (valid [| 7. |]);
  checkb "permuted config is the same key"
    (Option.bind (Cache.find c kb) Cache.feats = Some [| 7. |])

let test_stmt_eviction_keeps_features () =
  let s = Lazy.force tiny_stmt in
  let c = Cache.create ~stmt_cap:2 ~name:"evict" () in
  List.iter (fun i -> Cache.add c [ ("a", i) ] (valid ~stmt:s [| float_of_int i |])) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "stmts bounded by cap" 2 (Cache.stmts_held c);
  Alcotest.(check int) "every entry kept" 4 (Cache.size c);
  (* FIFO: the two oldest lost their program, none lost features *)
  List.iter
    (fun i ->
      let e = Cache.find c [ ("a", i) ] in
      checkb
        (Printf.sprintf "entry %d features intact" i)
        (Option.bind e Cache.feats = Some [| float_of_int i |]);
      checkb
        (Printf.sprintf "entry %d stmt %s" i (if i <= 2 then "evicted" else "retained"))
        (Option.is_some (Option.bind e Cache.stmt) = (i > 2)))
    [ 1; 2; 3; 4 ]

let test_keep_stmts_false_strips () =
  let s = Lazy.force tiny_stmt in
  let c = Cache.create ~keep_stmts:false ~name:"strip" () in
  let k = [ ("a", 1) ] in
  let stored = Cache.find_or_compile c k ~compile:(fun _ -> valid ~stmt:s [| 1. |]) in
  checkb "find_or_compile returns the stripped entry" (Cache.stmt stored = None);
  checkb "stored entry has no stmt"
    (Option.bind (Cache.find c k) Cache.stmt = None);
  checkb "features survive the strip"
    (Option.bind (Cache.find c k) Cache.feats = Some [| 1. |]);
  Alcotest.(check int) "no stmts held" 0 (Cache.stmts_held c)

let test_merge_first_wins_in_source_order () =
  let s = Lazy.force tiny_stmt in
  let into = Cache.create ~name:"into" () in
  let src = Cache.create ~name:"src" () in
  Cache.add into [ ("a", 1) ] (valid [| 1. |]);
  Cache.add src [ ("a", 1) ] (valid [| 9. |]);
  Cache.add src [ ("a", 2) ] (valid ~stmt:s [| 2. |]);
  Cache.add_validation src [ ("a", 2) ] [];
  Cache.merge ~into src;
  checkb "existing entry not overwritten"
    (Option.bind (Cache.find into [ ("a", 1) ]) Cache.feats = Some [| 1. |]);
  checkb "new entry merged with its stmt"
    (Option.is_some (Option.bind (Cache.find into [ ("a", 2) ]) Cache.stmt));
  checkb "validation verdicts merged"
    (Cache.find_validation into [ ("a", 2) ] = Some [])

let test_scope_registry () =
  Cache.clear_scopes ();
  let a = Cache.for_scope "wl@cuda|fusion=true" in
  let b = Cache.for_scope "wl@cuda|fusion=true" in
  let c = Cache.for_scope "wl@cuda|fusion=false" in
  checkb "same scope returns the same cache" (a == b);
  checkb "different scope is a different cache" (a != c);
  Cache.add a [ ("a", 1) ] (valid [| 1. |]);
  Cache.clear_scopes ();
  let a' = Cache.for_scope "wl@cuda|fusion=true" in
  Alcotest.(check int) "clear_scopes drops contents" 0 (Cache.size a')

(* ------------------------------------------------------------------ *)
(* Graph adjacency indexes vs brute-force scans                         *)
(* ------------------------------------------------------------------ *)

let test_graph_adjacency_matches_scan () =
  let b = G.builder () in
  let d = G.input b "d" [ 1; 8 ] in
  let w = G.param b "w" [ 8; 8 ] in
  let m = G.op b "dense" [ d; w ] in
  let r = G.op b "relu" [ m ] in
  (* duplicate input: the consumer must be listed once *)
  let s = G.op b "add" [ m; m ] in
  let t = G.op b "add" [ s; r ] in
  let g = G.finalize b [ t; r ] in
  Array.iter
    (fun (n : G.node) ->
      let brute =
        Array.fold_left
          (fun acc (c : G.node) ->
            if List.mem n.G.id c.G.inputs then c.G.id :: acc else acc)
          [] g.G.nodes
        |> List.rev
      in
      Alcotest.(check (list int))
        (Printf.sprintf "consumers(%d) = brute-force scan" n.G.id)
        brute (G.consumers g n.G.id);
      checkb
        (Printf.sprintf "is_output(%d) = membership scan" n.G.id)
        (G.is_output g n.G.id = List.mem n.G.id g.G.outputs))
    g.G.nodes

(* ------------------------------------------------------------------ *)
(* Equivalence sweep: cached lowering ≡ uncached, at -j1 and -j4        *)
(* ------------------------------------------------------------------ *)

let test_equivalence_sweep () =
  let per_template = 2 in
  let checked = ref 0 in
  List.iter
    (fun w ->
      let out = Fe.conv_tensor w in
      let tpls =
        [
          Templates.gpu_flat ~name:(w.Workloads.name ^ "_sweep_gpu") out;
          Templates.cpu_flat ~name:(w.Workloads.name ^ "_sweep_cpu") out;
        ]
      in
      List.iter
        (fun (tpl : Tuner.template) ->
          let rng =
            Random.State.make [| 31; Hashtbl.hash tpl.Tuner.tpl_name |]
          in
          let rec sample n acc =
            if List.length acc >= per_template || n = 0 then acc
            else
              let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
              match (try ignore (tpl.Tuner.tpl_instantiate cfg); true with _ -> false) with
              | true -> sample (n - 1) (cfg :: acc)
              | false -> sample (n - 1) acc
          in
          let cfgs = sample 80 [] in
          (* Populate the shared cache on the coordinator (the tuner's
             write discipline), then read it from worker domains. *)
          let cache = Cache.create ~name:"sweep" () in
          let compile cfg =
            match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
            | Some s -> valid ~stmt:s (Feature.extract s)
            | None -> Cache.Invalid
          in
          List.iter
            (fun c -> ignore (Cache.find_or_compile cache c ~compile))
            cfgs;
          List.iter
            (fun domains ->
              let pool = Par.create ~domains () in
              let oks =
                Par.parallel_map pool
                  (fun cfg ->
                    let reference = tpl.Tuner.tpl_instantiate cfg in
                    match
                      Option.bind (Cache.find ~record:false cache cfg) Cache.stmt
                    with
                    | None -> false
                    | Some cached ->
                        String.equal
                          (Printer.stmt_to_string cached)
                          (Printer.stmt_to_string reference)
                        && Validate.check cached = Validate.check reference)
                  (Array.of_list cfgs)
              in
              Array.iteri
                (fun i ok ->
                  checkb
                    (Printf.sprintf "%s cfg %d: cached ≡ uncached at -j%d"
                       tpl.Tuner.tpl_name i domains)
                    ok)
                oks)
            [ 1; 4 ];
          checked := !checked + List.length cfgs)
        tpls)
    Workloads.all;
  checkb "sweep covered a meaningful sample" (!checked >= 30)

(* ------------------------------------------------------------------ *)
(* The full tuning loop: cache on vs off, -j1 vs -j4, clean and faulty  *)
(* ------------------------------------------------------------------ *)

let sweep_template () =
  let d = Tensor.placeholder "eq_d" (List.map Expr.int [ 1; 16; 8; 8 ]) in
  let w = Tensor.placeholder "eq_w" (List.map Expr.int [ 16; 16; 3; 3 ]) in
  let c = Op.conv2d ~name:"eq_conv" ~stride:1 d w in
  Templates.gpu_flat ~name:"eq_tpl" c

let trial_fingerprint (t : Tuner.trial) =
  (t.Tuner.config, R.status_name t.Tuner.result.R.status, R.time t.Tuner.result,
   t.Tuner.best_so_far)

let run_tune ~jobs ~use_cache ~fault_rate tpl =
  let fault_plan =
    if fault_rate > 0. then Tvm_rpc.Fault.transient ~seed:7 ~rate:fault_rate ()
    else Tvm_rpc.Fault.none
  in
  let pool =
    Pool.create ~fault_plan (List.init 4 (fun _ -> Pool.Gpu_dev Machine.titan_x))
  in
  let par = Par.create ~domains:jobs () in
  let measure = Pool.measure_fn pool ~kind_pred:(fun _ -> true) in
  let measure_batch = Pool.batch_measure_fn ~par pool ~kind_pred:(fun _ -> true) in
  Tuner.tune
    ~spec:(Tvm_spec.Job_spec.make ~seed:5 ~jobs ~use_compile_cache:use_cache ())
    ~measure_batch ~method_:Tuner.Ml_model ~measure ~n_trials:32 tpl

let test_tune_log_invariant_to_cache_and_jobs () =
  let tpl = sweep_template () in
  let check ~fault_rate =
    let reference = run_tune ~jobs:1 ~use_cache:false ~fault_rate tpl in
    let fp r = List.map trial_fingerprint r.Tuner.history in
    List.iter
      (fun (jobs, use_cache) ->
        let r = run_tune ~jobs ~use_cache ~fault_rate tpl in
        checkb
          (Printf.sprintf
             "log identical at -j%d cache=%b (fault %.0f%%)" jobs use_cache
             (100. *. fault_rate))
          (fp r = fp reference))
      [ (1, true); (4, false); (4, true) ]
  in
  check ~fault_rate:0.0;
  check ~fault_rate:0.2

let suite =
  [
    Alcotest.test_case "hash-consed construction interns nodes" `Quick
      test_hashcons_interning;
    Alcotest.test_case "first-wins adds with stmt-fill upgrade" `Quick
      test_first_wins_and_stmt_fill;
    Alcotest.test_case "stmt eviction is FIFO and keeps features" `Quick
      test_stmt_eviction_keeps_features;
    Alcotest.test_case "keep_stmts:false stores features only" `Quick
      test_keep_stmts_false_strips;
    Alcotest.test_case "merge is first-wins in source order" `Quick
      test_merge_first_wins_in_source_order;
    Alcotest.test_case "scope registry shares and clears" `Quick
      test_scope_registry;
    Alcotest.test_case "graph adjacency = brute-force scans" `Quick
      test_graph_adjacency_matches_scan;
    Alcotest.test_case "cached lowering ≡ uncached across workloads" `Slow
      test_equivalence_sweep;
    Alcotest.test_case "tune log invariant to cache and -j (with faults)" `Slow
      test_tune_log_invariant_to_cache_and_jobs;
  ]
