(* Sharded measurement fleet tests: placement-invariant results at
   fleet scale (1000 heterogeneous devices, faults, concurrent batches),
   work stealing that never reorders the coordinator replay,
   speculative straggler re-measurement that cuts the makespan without
   changing a result, and the job-local backoff accounting that makes
   a twin cancelled mid-backoff free. *)

open Tvm_tir
module Par = Tvm_par.Pool
module Cfg = Tvm_autotune.Cfg_space
module Explorers = Tvm_autotune.Explorers
module Tuner = Tvm_autotune.Tuner
module Templates = Tvm_autotune.Templates
module R = Tvm_autotune.Measure_result
module Pool = Tvm_rpc.Device_pool
module Fleet = Tvm_rpc.Fleet
module Fault = Tvm_rpc.Fault
module Retry = Tvm_rpc.Retry_policy
module Machine = Tvm_sim.Machine
module Journal = Tvm_obs.Journal
module Report = Tvm_obs.Report
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
open Test_helpers

let titan = Pool.Gpu_dev Machine.titan_x
let xeon = Pool.Cpu_dev Machine.xeon_host

(* A small pool of valid (noise key, program) jobs shared by the tests
   (instantiating templates is the expensive part). *)
let job_pool =
  lazy
    (let d = Tensor.placeholder "fl_d" (List.map Expr.int [ 1; 16; 8; 8 ]) in
     let w = Tensor.placeholder "fl_w" (List.map Expr.int [ 16; 16; 3; 3 ]) in
     let c = Op.conv2d ~name:"fl_conv" ~stride:1 d w in
     let tpl = Templates.gpu_flat ~name:"fl_tpl" c in
     let rng = Random.State.make [| 13 |] in
     let rec valid n acc =
       if List.length acc >= 12 || n = 0 then acc
       else
         let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
         match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
         | Some s -> valid (n - 1) ((Cfg.hash cfg, s) :: acc)
         | None -> valid (n - 1) acc
     in
     Array.of_list (List.rev (valid 400 [])))

let batches_of sizes =
  let pool = Lazy.force job_pool in
  let np = Array.length pool in
  List.mapi
    (fun b (kind, size) ->
      (kind, Array.init size (fun i -> pool.((i + (3 * b)) mod np))))
    sizes
  |> Array.of_list

let faulty_catalog ?(speculate = false) ?shards ?straggler n =
  Fleet.catalog ?shards ~speculate
    ~fault_plan:(Fault.transient ~seed:11 ~rate:0.2 ())
    (Fleet.mixed_kinds ?straggler n)

(* ------------------------------------------------------------------ *)
(* Determinism at fleet scale                                           *)
(* ------------------------------------------------------------------ *)

(* 1000 heterogeneous devices, 20% transient faults, three multiplexed
   batches (two device kinds): results AND the journal must be
   byte-identical at -j1 vs -j8. *)
let test_fleet_deterministic_across_j () =
  let sizes = [ (titan, 40); (xeon, 25); (titan, 35) ] in
  let total = List.fold_left (fun a (_, s) -> a + s) 0 sizes in
  let run jobs =
    Journal.set_enabled true;
    Journal.set_job_tags (Array.init total (fun i -> i));
    let t = Fleet.session ~salt:5 (faulty_catalog ~speculate:true 1000) in
    let par = Par.create ~domains:jobs () in
    let res = Fleet.measure_batches ~par t (batches_of sizes) in
    Journal.clear_job_tags ();
    let lines = List.map Journal.entry_to_line (Journal.entries ()) in
    Journal.set_enabled false;
    (res, lines, Fleet.makespan t, Fleet.stats t)
  in
  let r1, l1, mk1, st1 = run 1 in
  let r8, l8, mk8, st8 = run 8 in
  checkb "results identical at -j1 vs -j8" (r1 = r8);
  checkb "journal byte-identical at -j1 vs -j8" (l1 = l8);
  checkb "makespan identical" (mk1 = mk8);
  checkb "stats identical" (st1 = st8);
  checkb "fleet really has 1000 devices"
    (match st1.Fleet.fs_devices with 1000 -> true | _ -> false);
  Alcotest.(check int)
    "every job resolved" total
    (Array.fold_left (fun a b -> a + Array.length b) 0 r1)

(* Results (not journals: those record placement) must also be
   invariant under shard count and speculation. *)
let test_results_invariant_shards_spec () =
  let sizes = [ (titan, 30); (xeon, 20) ] in
  let run ?shards ?(speculate = false) () =
    let t = Fleet.session ~salt:5 (faulty_catalog ~speculate ?shards 300) in
    Fleet.measure_batches t (batches_of sizes)
  in
  let base = run ~shards:4 () in
  checkb "results invariant under shard count"
    (base = run ~shards:16 ());
  checkb "results invariant under auto sharding" (base = run ());
  checkb "results invariant under speculation"
    (base = run ~shards:4 ~speculate:true ())

(* Stealing never reorders the coordinator replay: multiplexing N
   batches through one schedule returns exactly what submitting them
   one by one to an identically-salted fresh session would. *)
let multiplex_matches_sequential =
  QCheck.Test.make ~name:"measure_batches = sequential measure_batch"
    ~count:25
    QCheck.(
      triple (int_range 0 20) (int_range 0 20) (int_range 0 6))
    (fun (n1, n2, salt) ->
      let sizes = [ (titan, n1); (xeon, n2); (titan, (n1 + n2) mod 13) ] in
      let batches = batches_of sizes in
      let mux =
        let t = Fleet.session ~salt (faulty_catalog 120) in
        Fleet.measure_batches t batches
      in
      let seq =
        let t = Fleet.session ~salt (faulty_catalog 120) in
        Array.map
          (fun (kind, jobs) -> Fleet.measure_batch t ~kind jobs)
          batches
      in
      mux = seq)

(* ------------------------------------------------------------------ *)
(* Stealing and scaling                                                 *)
(* ------------------------------------------------------------------ *)

let costs n = Array.init n (fun i -> 0.06 +. (0.04 *. float_of_int (i mod 7) /. 7.))

(* An all-slow shard must be drained by its siblings, and moving the
   jobs must not change a single result. *)
let test_stealing_rebalances () =
  let roster = List.init 32 (fun i -> (titan, if i < 8 then 6.0 else 1.0)) in
  let run roster =
    let t = Fleet.session (Fleet.catalog ~shards:4 roster) in
    let r = Fleet.simulate t ~kind:titan ~cost_s:(costs 400) in
    (r, Fleet.makespan t, Fleet.stats t)
  in
  let r, mk, st = run roster in
  checkb "steals happened" (st.Fleet.fs_steals > 0);
  checkb "stolen jobs counted" (st.Fleet.fs_stolen_jobs > 0);
  (* Without stealing the slow shard alone would hold its whole slice:
     100 jobs x ~0.28 s x 6 = ~170 s. Stealing must beat that by a lot. *)
  checkb
    (Printf.sprintf "makespan %.1f s beats the no-steal bound" mk)
    (mk < 60.);
  let r_flat, _, _ = run (List.init 32 (fun _ -> (titan, 1.0))) in
  checkb "stealing never changes results"
    (Array.map (fun (x : R.t) -> (x.R.status, x.R.time_s)) r
    = Array.map (fun (x : R.t) -> (x.R.status, x.R.time_s)) r_flat)

let test_scaling_efficiency () =
  let span d =
    let t = Fleet.session (Fleet.catalog (Fleet.mixed_kinds d)) in
    ignore (Fleet.simulate t ~kind:titan ~cost_s:(costs 2000));
    (Fleet.makespan t, Fleet.usable t ~kind:titan)
  in
  let mk8, u8 = span 8 and mk256, u256 = span 256 in
  let eff = mk8 /. mk256 /. (float_of_int u256 /. float_of_int u8) in
  checkb
    (Printf.sprintf "scaling efficiency %.2f >= 0.7 (8 -> 256 devices)" eff)
    (eff >= 0.7)

(* ------------------------------------------------------------------ *)
(* Speculation                                                          *)
(* ------------------------------------------------------------------ *)

(* A 12x straggler of the target kind: speculation must cut the
   straggler-dominated makespan by >= 1.5x and change nothing else. *)
let test_speculation_beats_straggler () =
  let run speculate =
    let t =
      Fleet.session
        (Fleet.catalog ~speculate (Fleet.mixed_kinds ~straggler:0 64))
    in
    let r = Fleet.simulate t ~kind:titan ~cost_s:(costs 300) in
    (r, Fleet.makespan t, Fleet.stats t)
  in
  let r_off, mk_off, _ = run false in
  let r_on, mk_on, st_on = run true in
  checkb "speculation changes no result" (r_off = r_on);
  checkb "twins were launched" (st_on.Fleet.fs_spec_launched > 0);
  checkb "twins won races" (st_on.Fleet.fs_spec_wins > 0);
  checkb
    (Printf.sprintf "speculation speedup %.2fx >= 1.5x"
       (mk_off /. mk_on))
    (mk_off >= 1.5 *. mk_on)

(* The satellite-2 regression: a twin that replays a retryable fault is
   cancelled mid-backoff when its primary resolves first. Backoff is
   charged to the job's ready time (Retry_policy.retry_at), never to a
   shared clock, so speculation must not add retries, must not change
   results, and must not inflate the virtual clock — even on a fleet
   where faults and twins interact constantly. *)
let test_cancelled_twin_charges_nothing () =
  let run speculate =
    Journal.set_enabled true;
    Journal.set_job_tags (Array.init 200 (fun i -> i));
    let t =
      Fleet.session ~salt:3
        (faulty_catalog ~speculate ~straggler:0 64)
    in
    let r = Fleet.simulate t ~kind:titan ~cost_s:(costs 200) in
    Journal.clear_job_tags ();
    let entries = Journal.entries () in
    Journal.set_enabled false;
    (r, Fleet.makespan t, Fleet.stats t, entries)
  in
  let r_off, mk_off, st_off, _ = run false in
  let r_on, mk_on, st_on, entries_on = run true in
  checkb "results identical with twins racing faults" (r_off = r_on);
  Alcotest.(check int)
    "retry count identical: no backoff charged per copy"
    st_off.Fleet.fs_retries st_on.Fleet.fs_retries;
  let cancelled =
    List.length
      (List.filter
         (function
           | Journal.Dispatch { d_outcome = "cancelled"; _ } -> true
           | _ -> false)
         entries_on)
  in
  checkb "twins were cancelled mid-flight" (cancelled > 0);
  Alcotest.(check int) "every cancellation tallied"
    (st_on.Fleet.fs_spec_wins + st_on.Fleet.fs_spec_losses)
    cancelled;
  (* Speculation may only help the clock (a double-charged backoff
     showed up here as a makespan inflation). *)
  checkb
    (Printf.sprintf "makespan %.2f s (spec) <= %.2f s (no spec)" mk_on mk_off)
    (mk_on <= mk_off +. 1e-9)

let test_retry_at_is_job_local () =
  let p = Retry.default in
  let at = Retry.retry_at p ~now:100. ~attempt:1 in
  checkb "retry_at = now + backoff"
    (Float.abs (at -. (100. +. Retry.backoff_s p ~attempt:1)) < 1e-12)

(* ------------------------------------------------------------------ *)
(* Report integration                                                   *)
(* ------------------------------------------------------------------ *)

let test_report_shard_tallies () =
  Journal.set_enabled true;
  Journal.set_job_tags (Array.init 400 (fun i -> i));
  let roster = List.init 32 (fun i -> (titan, if i = 0 then 12.0 else 1.0)) in
  let t = Fleet.session (Fleet.catalog ~shards:4 ~speculate:true roster) in
  ignore (Fleet.simulate t ~kind:titan ~cost_s:(costs 400));
  Journal.clear_job_tags ();
  let rp = Report.analyze (Journal.entries ()) in
  Journal.set_enabled false;
  let st = Fleet.stats t in
  checkb "report sees the shards" (List.length rp.Report.rp_shards = 4);
  (* fs_stolen_jobs counts steal *events* (a job re-stolen counts per
     hop); the journal records one dispatch per attempt. *)
  checkb "report sees stolen dispatches" (rp.Report.rp_stolen > 0);
  checkb "stolen dispatches bounded by steal events"
    (rp.Report.rp_stolen <= st.Fleet.fs_stolen_jobs);
  Alcotest.(check int) "report spec wins match fleet stats"
    st.Fleet.fs_spec_wins rp.Report.rp_spec_wins;
  Alcotest.(check int) "report spec losses match fleet stats"
    st.Fleet.fs_spec_losses rp.Report.rp_spec_losses;
  let total_share =
    List.fold_left (fun a s -> a +. s.Report.sh_share) 0. rp.Report.rp_shards
  in
  checkb "shard utilization shares sum to 1"
    (Float.abs (total_share -. 1.) < 1e-9);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "render has a fleet shards section"
    (contains (Report.render rp) "fleet shards:")

(* ------------------------------------------------------------------ *)
(* SA propose memo (satellite 1)                                        *)
(* ------------------------------------------------------------------ *)

(* On a 16-config space, 60 steps per chain must revisit configs
   constantly; the chain-local memo caps predictor calls at the space
   size while leaving the output untouched. *)
let test_sa_propose_memo () =
  let space =
    Cfg.space
      [
        Cfg.knob "a" (List.init 4 (fun i -> i + 1));
        Cfg.knob "b" (List.init 4 (fun i -> i + 1));
      ]
  in
  let calls = ref 0 in
  let predict_for_chain _ cfg =
    incr calls;
    Float.sin (float_of_int (Cfg.hash cfg land 0xFFFF))
  in
  let n_chains = 4 and n_steps = 60 in
  let run () =
    calls := 0;
    let rng = Random.State.make [| 5 |] in
    let state = Explorers.sa_init space rng ~n_chains in
    let out =
      Explorers.simulated_annealing space rng state ~predict_for_chain
        ~visited:(Hashtbl.create 8) ~n_steps ~temp:1.0 ~batch:8
    in
    (out, !calls)
  in
  let out1, calls1 = run () in
  let out2, calls2 = run () in
  checkb "memoized walk is reproducible" (out1 = out2 && calls1 = calls2);
  checkb
    (Printf.sprintf "%d predictor calls <= %d distinct configs" calls1
       (n_chains * Cfg.size space))
    (calls1 <= n_chains * Cfg.size space);
  checkb "far fewer calls than proposals"
    (calls1 < n_chains * (n_steps + 1));
  checkb "walk still yields candidates" (out1 <> [])

let suite =
  [
    Alcotest.test_case "1000-device fleet: -j1 = -j8 (results + journal)"
      `Quick test_fleet_deterministic_across_j;
    Alcotest.test_case "results invariant under shards/speculation" `Quick
      test_results_invariant_shards_spec;
    QCheck_alcotest.to_alcotest multiplex_matches_sequential;
    Alcotest.test_case "stealing rebalances without changing results" `Quick
      test_stealing_rebalances;
    Alcotest.test_case "scaling efficiency >= 0.7 at 8 -> 256" `Quick
      test_scaling_efficiency;
    Alcotest.test_case "speculation beats a 12x straggler >= 1.5x" `Quick
      test_speculation_beats_straggler;
    Alcotest.test_case "cancelled twin charges no backoff" `Quick
      test_cancelled_twin_charges_nothing;
    Alcotest.test_case "retry_at is job-local" `Quick test_retry_at_is_job_local;
    Alcotest.test_case "report: shard/steal/speculation tallies" `Quick
      test_report_shard_tallies;
    Alcotest.test_case "sa propose memo caps predictor calls" `Quick
      test_sa_propose_memo;
  ]
