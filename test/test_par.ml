(* Multicore layer tests: the Tvm_par domain pool itself, and the
   determinism guarantee of every tuning phase that fans out over it —
   the whole point of the design is that -j N never changes results. *)

open Tvm_tir
module Par = Tvm_par.Pool
module Cfg = Tvm_autotune.Cfg_space
module Gbt = Tvm_autotune.Gbt
module Explorers = Tvm_autotune.Explorers
module Tuner = Tvm_autotune.Tuner
module Templates = Tvm_autotune.Templates
module Compile_cache = Tvm_autotune.Compile_cache
module R = Tvm_autotune.Measure_result
module Pool = Tvm_rpc.Device_pool
module Fault = Tvm_rpc.Fault
module Machine = Tvm_sim.Machine
module Tensor = Tvm_te.Tensor
module Op = Tvm_te.Operators
open Test_helpers

(* ------------------------------------------------------------------ *)
(* The pool                                                             *)
(* ------------------------------------------------------------------ *)

let map_matches_sequential =
  QCheck.Test.make ~name:"parallel_map = Array.map at any domain count"
    ~count:60
    QCheck.(pair (int_range 0 80) (int_range 1 6))
    (fun (n, domains) ->
      let pool = Par.create ~domains () in
      let xs = Array.init n (fun i -> i) in
      let f x = (x * x) + 7 in
      Par.parallel_map pool f xs = Array.map f xs)

let test_map_list () =
  let pool = Par.create ~domains:4 () in
  let xs = List.init 33 (fun i -> i) in
  Alcotest.(check (list int))
    "map_list preserves order" (List.map succ xs)
    (Par.map_list pool succ xs)

let test_reduce_ordered () =
  (* string concat is non-commutative: only an input-index-order fold
     produces this result, so any merge-order bug shows up. *)
  let check_at domains =
    let pool = Par.create ~domains () in
    let xs = Array.init 26 (fun i -> Char.chr (Char.code 'a' + i)) in
    let s =
      Par.parallel_reduce pool
        ~map:(fun c -> String.make 1 c)
        ~combine:( ^ ) ~init:"" xs
    in
    Alcotest.(check string)
      (Printf.sprintf "ordered fold at %d domains" domains)
      "abcdefghijklmnopqrstuvwxyz" s
  in
  List.iter check_at [ 1; 2; 4; 8 ]

let test_exception_lowest_index () =
  let check_at domains =
    let pool = Par.create ~domains () in
    let f i = if i mod 5 = 3 then failwith (string_of_int i) else i in
    match Par.parallel_map pool f (Array.init 32 (fun i -> i)) with
    | _ -> Alcotest.fail "expected an exception"
    | exception Failure msg ->
        Alcotest.(check string)
          (Printf.sprintf "lowest failing index at %d domains" domains)
          "3" msg
  in
  List.iter check_at [ 1; 2; 4 ]

let test_nested_rejected () =
  let check_at domains =
    let pool = Par.create ~domains () in
    let nested _ =
      Array.length (Par.parallel_map Par.sequential succ [| 1; 2 |])
    in
    match Par.parallel_map pool nested [| 0; 1; 2 |] with
    | _ ->
        Alcotest.fail
          (Printf.sprintf "nested fan-out not rejected at %d domains" domains)
    | exception Par.Nested_parallelism -> ()
  in
  (* must trip at -j1 too, or the bug hides until someone passes -j *)
  List.iter check_at [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Feature memo: int-hash collisions must not share entries             *)
(* ------------------------------------------------------------------ *)

let test_feature_cache_collision () =
  (* Find two distinct configurations with the same [Cfg.hash] by
     enumerating a 64^3 space (the seed space has a collision within
     the first ~34k points; bound the scan so the test stays fast).
     The old memo was keyed by this int hash, so the second config
     silently inherited the first one's features. *)
  let space =
    Cfg.space
      [
        Cfg.knob "a" (List.init 64 Fun.id);
        Cfg.knob "b" (List.init 64 Fun.id);
        Cfg.knob "c" (List.init 64 Fun.id);
      ]
  in
  let seen = Hashtbl.create 65536 in
  let colliding = ref None in
  (try
     for i = 0 to min (Cfg.size space) 65536 - 1 do
       let cfg = Cfg.config_at space i in
       let h = Cfg.hash cfg in
       match Hashtbl.find_opt seen h with
       | Some prev when prev <> cfg ->
           colliding := Some (prev, cfg);
           raise Exit
       | Some _ -> ()
       | None -> Hashtbl.add seen h cfg
     done
   with Exit -> ());
  match !colliding with
  | None -> Alcotest.fail "no hash collision found in the scan bound"
  | Some (c1, c2) ->
      checkb "the pair really collides" (Cfg.hash c1 = Cfg.hash c2 && c1 <> c2);
      let valid fs = Compile_cache.Valid { feats = fs; stmt = None } in
      let cache = Compile_cache.create () in
      Compile_cache.add cache c1 (valid [| 1.; 2. |]);
      checkb "colliding config is NOT found"
        (Compile_cache.find cache c2 = None);
      Compile_cache.add cache c2 (valid [| 3. |]);
      Alcotest.(check int) "both entries kept" 2 (Compile_cache.size cache);
      checkb "first entry intact"
        (Option.bind (Compile_cache.find cache c1) Compile_cache.feats
        = Some [| 1.; 2. |]);
      checkb "second entry distinct"
        (Option.bind (Compile_cache.find cache c2) Compile_cache.feats
        = Some [| 3. |])

let test_feature_cache_merge_first_wins () =
  let valid fs = Compile_cache.Valid { feats = fs; stmt = None } in
  let a = Compile_cache.create () and b = Compile_cache.create () in
  let cfg = [ ("x", 1) ] and cfg2 = [ ("x", 2) ] in
  Compile_cache.add a cfg (valid [| 1. |]);
  Compile_cache.add b cfg (valid [| 9. |]);
  Compile_cache.add b cfg2 Compile_cache.Invalid;
  Compile_cache.merge ~into:a b;
  checkb "existing entry not overwritten"
    (Option.bind (Compile_cache.find a cfg) Compile_cache.feats
    = Some [| 1. |]);
  checkb "new entry (known-invalid) merged"
    (Compile_cache.find a cfg2 = Some Compile_cache.Invalid)

(* ------------------------------------------------------------------ *)
(* Db under concurrent adds                                             *)
(* ------------------------------------------------------------------ *)

let test_db_concurrent_adds () =
  let db = Tuner.Db.create () in
  let n_domains = 4 and per_domain = 500 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      let t = 1.0 +. float_of_int ((d * per_domain) + i) in
      let t = if d = 2 && i = 123 then 0.25 else t in
      Tuner.Db.add db "k" [ ("a", (d * per_domain) + i) ] (R.ok t)
    done
  in
  let ds = List.init n_domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no add lost" (n_domains * per_domain) (Tuner.Db.size db);
  Alcotest.(check int) "tally consistent" (n_domains * per_domain)
    (Tuner.Db.status_count db "ok");
  match Tuner.Db.best db "k" with
  | Some r ->
      checkb "best index survived the races"
        (R.time r.Tuner.Db.db_result = Some 0.25)
  | None -> Alcotest.fail "best lost"

(* ------------------------------------------------------------------ *)
(* Phase determinism: SA chains and GBT training                        *)
(* ------------------------------------------------------------------ *)

let sa_space () =
  Cfg.space
    [
      Cfg.knob "a" (List.init 8 (fun i -> i + 1));
      Cfg.knob "b" (List.init 8 (fun i -> i + 1));
      Cfg.knob "c" (List.init 8 (fun i -> i + 1));
    ]

let test_sa_bit_identical () =
  let space = sa_space () in
  let predict _chain cfg =
    Float.sin (float_of_int (Cfg.hash cfg land 0xFFFF))
  in
  let run domains =
    let pool = Par.create ~domains () in
    let rng = Random.State.make [| 7 |] in
    let state = Explorers.sa_init space rng ~n_chains:8 in
    Explorers.simulated_annealing ~pool space rng state
      ~predict_for_chain:predict ~visited:(Hashtbl.create 16) ~n_steps:60
      ~temp:1.0 ~batch:16
  in
  let base = run 1 in
  checkb "SA proposed something" (base <> []);
  List.iter
    (fun d ->
      checkb
        (Printf.sprintf "SA batch identical at %d domains" d)
        (run d = base))
    [ 2; 4; 8 ]

let test_gbt_pool_identical () =
  let rng = Random.State.make [| 11 |] in
  let xs =
    Array.init 128 (fun _ -> Array.init 6 (fun _ -> Random.State.float rng 1.))
  in
  let ys = Array.map (fun x -> (x.(0) *. x.(1)) -. x.(3)) xs in
  let seq = Gbt.fit xs ys in
  let par = Gbt.fit ~pool:(Par.create ~domains:4 ()) xs ys in
  Array.iter
    (fun x ->
      checkb "prediction bit-identical" (Gbt.predict seq x = Gbt.predict par x))
    xs;
  let acc_seq = Gbt.rank_accuracy seq xs ys in
  let acc_par = Gbt.rank_accuracy ~pool:(Par.create ~domains:4 ()) par xs ys in
  checkb "rank accuracy bit-identical" (acc_seq = acc_par)

(* ------------------------------------------------------------------ *)
(* End-to-end: the whole tuning loop at -j1 vs -j4                      *)
(* ------------------------------------------------------------------ *)

let conv_template () =
  let d = Tensor.placeholder "par_d" (List.map Expr.int [ 1; 16; 8; 8 ]) in
  let w = Tensor.placeholder "par_w" (List.map Expr.int [ 16; 16; 3; 3 ]) in
  let c = Op.conv2d ~name:"par_conv" ~stride:1 d w in
  Templates.gpu_flat ~name:"par_tpl" c

let trial_fingerprint (t : Tuner.trial) =
  (t.Tuner.config, R.status_name t.Tuner.result.R.status, R.time t.Tuner.result,
   t.Tuner.best_so_far)

let run_tune ~jobs ~fault_rate tpl =
  let fault_plan =
    if fault_rate > 0. then Fault.transient ~seed:7 ~rate:fault_rate ()
    else Fault.none
  in
  let pool =
    Pool.create ~fault_plan (List.init 4 (fun _ -> Pool.Gpu_dev Machine.titan_x))
  in
  let par = Par.create ~domains:jobs () in
  let measure = Pool.measure_fn pool ~kind_pred:(fun _ -> true) in
  let measure_batch = Pool.batch_measure_fn ~par pool ~kind_pred:(fun _ -> true) in
  Tuner.tune
    ~spec:(Tvm_spec.Job_spec.make ~seed:5 ~jobs ())
    ~measure_batch ~method_:Tuner.Ml_model ~measure ~n_trials:32 tpl

let test_tune_identical_across_jobs () =
  let tpl = conv_template () in
  let check ~fault_rate =
    let r1 = run_tune ~jobs:1 ~fault_rate tpl in
    let r4 = run_tune ~jobs:4 ~fault_rate tpl in
    checkb
      (Printf.sprintf "best config identical (fault %.0f%%)" (100. *. fault_rate))
      (r1.Tuner.best_config = r4.Tuner.best_config);
    checkb "best time identical" (r1.Tuner.best_time = r4.Tuner.best_time);
    Alcotest.(check int) "same trial count"
      (List.length r1.Tuner.history)
      (List.length r4.Tuner.history);
    checkb "tuning log identical trial by trial"
      (List.map trial_fingerprint r1.Tuner.history
      = List.map trial_fingerprint r4.Tuner.history)
  in
  check ~fault_rate:0.0;
  (* the PR-2 fault machinery replays on the coordinator, so a faulty
     fleet must be exactly as deterministic as a healthy one *)
  check ~fault_rate:0.2

let test_measure_batch_matches_sequential () =
  let tpl = conv_template () in
  let rng = Random.State.make [| 13 |] in
  let rec valid n acc =
    if List.length acc >= 6 || n = 0 then acc
    else
      let cfg = Cfg.random_config tpl.Tuner.tpl_space rng in
      match (try Some (tpl.Tuner.tpl_instantiate cfg) with _ -> None) with
      | Some s -> valid (n - 1) ((Cfg.hash cfg, s) :: acc)
      | None -> valid (n - 1) acc
  in
  let jobs = Array.of_list (List.rev (valid 200 [])) in
  checkb "found batch jobs" (Array.length jobs > 0);
  let mk () =
    Pool.create
      ~fault_plan:(Fault.transient ~seed:3 ~rate:0.2 ())
      (List.init 2 (fun _ -> Pool.Gpu_dev Machine.titan_x))
  in
  let p_seq = mk () and p_par = mk () in
  let seq =
    Array.map (fun (key, s) -> Pool.measure p_seq ~key ~kind_pred:(fun _ -> true) s) jobs
  in
  let par =
    Pool.measure_batch ~par:(Par.create ~domains:4 ()) p_par
      ~kind_pred:(fun _ -> true) jobs
  in
  checkb "batch results byte-identical to sequential submits" (seq = par);
  checkb "simulated clocks agree" (Pool.makespan p_seq = Pool.makespan p_par)

let suite =
  [
    QCheck_alcotest.to_alcotest map_matches_sequential;
    Alcotest.test_case "map_list order" `Quick test_map_list;
    Alcotest.test_case "parallel_reduce is an ordered fold" `Quick test_reduce_ordered;
    Alcotest.test_case "lowest-index exception wins" `Quick test_exception_lowest_index;
    Alcotest.test_case "nested fan-out rejected" `Quick test_nested_rejected;
    Alcotest.test_case "feature memo survives hash collisions" `Quick
      test_feature_cache_collision;
    Alcotest.test_case "feature memo merge is first-wins" `Quick
      test_feature_cache_merge_first_wins;
    Alcotest.test_case "db concurrent adds" `Quick test_db_concurrent_adds;
    Alcotest.test_case "sa chains bit-identical across -j" `Quick test_sa_bit_identical;
    Alcotest.test_case "gbt training bit-identical across -j" `Quick
      test_gbt_pool_identical;
    Alcotest.test_case "measure_batch = sequential measure" `Quick
      test_measure_batch_matches_sequential;
    Alcotest.test_case "tune log identical at -j1 vs -j4 (with faults)" `Slow
      test_tune_identical_across_jobs;
  ]
