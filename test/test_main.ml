(* Test driver: one Alcotest run covering every subsystem of the stack. *)

let () =
  Tvm_graph.Std_ops.register_all ();
  Alcotest.run "tvm-repro"
    [
      ("obs", Test_obs.suite);
      ("tir", Test_tir.suite);
      ("te", Test_te.suite);
      ("schedule", Test_schedule.suite);
      ("lower", Test_lower.suite);
      ("vthread+vdla", Test_vthread.suite);
      ("graph", Test_graph.suite);
      ("memplan", Test_memplan.suite);
      ("layout", Test_layout.suite);
      ("autotune", Test_autotune.suite);
      ("par", Test_par.suite);
      ("cache", Test_cache.suite);
      ("validate", Test_validate.suite);
      ("faults", Test_faults.suite);
      ("sim", Test_sim.suite);
      ("e2e", Test_e2e.suite);
      ("experiments", Test_experiments.suite);
      ("serve", Test_serve.suite);
      ("model_server", Test_model_server.suite);
      ("fleet", Test_fleet.suite);
    ]
